(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on this engine.

   Sections (run all by default, or name them on the command line):

     figure8       speedup of Q1-Q4 with GApply vs. the traditional
                   sorted-outer-union formulation (paper Figure 8),
                   plus the naive correlated series for Q2/Q3
     table1        per-rule benefit sweeps: max / average / average over
                   wins (paper Table 1)
     partitioning  sort- vs hash-partitioned GApply on Q1-Q4 (the
                   Section 5.2 "impact is comparable" remark)
     parallel      multicore GApply: sweep --parallelism 1/2/4/8 on
                   Q1-Q4 (domain-pool execution phase), verifying the
                   parallel output is tuple-identical to sequential
     clientsim     native GApply vs. the Section 5.1 client-side
                   simulation on Q4 (the paper measured ~20% overhead)
     pipeline      XML publishing end-to-end: sorted outer union vs. one
                   GApply pass through the constant-space tagger
     ablation      engine design-choice ablations (Apply caching,
                   clustering guarantee, parallel execution phase)
     analyze       per-operator breakdown of Q1-Q4 through the EXPLAIN
                   ANALYZE instrumentation (Obs sinks + trace hooks),
                   including the tracing-off overhead check
     throughput    plan-cache hit rates and concurrent-session
                   throughput through the workload driver
     transactions  snapshot-isolated reader latency (p50/p99) solo vs
                   under a concurrent committing writer, MVCC on vs the
                   GAPPLY_MVCC=off baseline, plus two-writer conflict
                   accounting
     governor      resource-governor overhead and enforcement
                   (timeouts, row/memory ceilings, degraded modes)
     durability    WAL logging overhead (off/lazy/strict vs in-memory),
                   Q1-Q4 read-path parity under strict, and recovery
                   time vs WAL length / snapshot
     vectorized    batch-size sweep on warm Q1, per-operator
                   scalar-vs-batched EXPLAIN ANALYZE speedups, and a
                   dictionary-encoding A/B
     micro         Bechamel micro-benchmarks of the core operators

   Usage:
     dune exec bench/main.exe -- [SECTION]... [--msf 1.0] [--repeat 5]
                                 [--json FILE]

   --json FILE additionally writes every recorded measurement as one
   JSON document (see the [Json] module below), making the perf
   trajectory machine-readable across PRs.  *)

let default_msf = 1.0
let default_repeat = 5

(* ---------- machine-readable output ---------- *)

(* A hand-rolled JSON printer (no external dependency): enough of the
   format for flat measurement records. *)
module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* %.17g round-trips; trim to something readable but exact
             enough for timings *)
          Buffer.add_string buf (Printf.sprintf "%.6g" f)
        else Buffer.add_string buf "null"
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            write buf (Str k);
            Buffer.add_char buf ':';
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 4096 in
    write buf t;
    Buffer.contents buf
end

(* Measurements recorded by sections that support machine-readable
   output (in run order). *)
let json_records : Json.t list ref = ref []

let record ~section ~query fields =
  json_records :=
    Json.Obj (("section", Json.Str section) :: ("query", Json.Str query)
              :: fields)
    :: !json_records

let write_json ~msf ~repeat path =
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "gapply");
        ("msf", Json.Float msf);
        ("repeat", Json.Int repeat);
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("results", Json.List (List.rev !json_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote %d record(s) to %s@."
    (List.length !json_records) path

(* median-of-N elapsed time, in seconds; CLOCK_MONOTONIC so wall-clock
   adjustments between samples cannot skew a measurement *)
let time_runs ~repeat f =
  let samples =
    List.init repeat (fun _ ->
        let t0 = Metrics.now_ns () in
        ignore (f ());
        float_of_int (Metrics.now_ns () - t0) /. 1e9)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)

let ms t = 1000. *. t

let bind cat src =
  Sql_binder.bind_query cat (Sql_parser.parse_query_string src)

let optimize cat plan = (Optimizer.optimize cat plan).Optimizer.plan

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ---------- Figure 8 ---------- *)

let bench_figure8 ~msf ~repeat () =
  header (Printf.sprintf "Figure 8: speedup using GApply (msf %g)" msf);
  let cat = Tpch_gen.catalog ~msf () in
  Format.printf "%-4s %18s %15s %10s@." "" "baseline (ms)" "gapply (ms)"
    "speedup";
  List.iter
    (fun (name, gapply_src, baseline_src) ->
      let gapply_plan = optimize cat (bind cat gapply_src) in
      let baseline_plan = optimize cat (bind cat baseline_src) in
      let t_base =
        time_runs ~repeat (fun () -> Executor.run_count cat baseline_plan)
      in
      let t_gapply =
        time_runs ~repeat (fun () -> Executor.run_count cat gapply_plan)
      in
      Format.printf "%-4s %18.1f %15.1f %9.2fx@." name (ms t_base)
        (ms t_gapply) (t_base /. t_gapply);
      record ~section:"figure8" ~query:name
        [
          ("baseline_ms", Json.Float (ms t_base));
          ("gapply_ms", Json.Float (ms t_gapply));
          ("speedup", Json.Float (t_base /. t_gapply));
        ])
    Workloads.figure8_queries;
  Format.printf
    "@.(ratio = time without GApply / time with GApply; the paper reports \
     up to ~2x)@.";
  (* the verbatim correlated SQL of Section 2: naive per-row execution
     (no decorrelation) vs. the optimizer's decorrelate-scalar-agg
     rewrite vs. GApply.  The naive series runs at a reduced scale to
     keep its quadratic runtime sane. *)
  let small_msf = Float.min msf 0.25 in
  let cat = Tpch_gen.catalog ~msf:small_msf () in
  Format.printf
    "@.Extra series: the verbatim correlated SQL of Section 2 (msf %g):@."
    small_msf;
  Format.printf "%-4s %14s %18s %15s@." "" "naive (ms)" "decorrelated (ms)"
    "gapply (ms)";
  List.iter
    (fun (name, gapply_src, correlated_src) ->
      let gapply_plan = optimize cat (bind cat gapply_src) in
      let naive_plan = bind cat correlated_src in
      let decorrelated_plan = optimize cat naive_plan in
      let t_naive =
        time_runs ~repeat:(max 1 (repeat / 2)) (fun () ->
            Executor.run_count cat naive_plan)
      in
      let t_dec =
        time_runs ~repeat (fun () ->
            Executor.run_count cat decorrelated_plan)
      in
      let t_gapply =
        time_runs ~repeat (fun () -> Executor.run_count cat gapply_plan)
      in
      Format.printf "%-4s %14.1f %18.1f %15.1f@." name (ms t_naive)
        (ms t_dec) (ms t_gapply))
    Workloads.figure8_correlated

(* ---------- Table 1 ---------- *)

(* classic cleanup applied to both sides so we isolate the rule's own
   effect (the paper pushes inserted selections down with the
   traditional rules afterwards) *)
let cleanup_rules =
  [
    "merge-selects"; "select-through-project"; "select-pushdown-join";
    "eliminate-identity-project";
  ]

let cleanup cat plan =
  List.fold_left
    (fun plan rule -> Optimizer.force_rule_exhaustively rule cat plan)
    plan cleanup_rules

let bench_table1 ~msf ~repeat () =
  header
    (Printf.sprintf "Table 1: effect of transformation rules (msf %g)" msf);
  let cat = Tpch_gen.catalog ~msf () in
  Format.printf "%-36s %12s %12s %12s@." "Rule" "Max" "Average"
    "Avg over wins";
  List.iter
    (fun (label, rule, instances) ->
      let benefits =
        List.map
          (fun (_param, src) ->
            let bound = bind cat src in
            let without_rule = cleanup cat bound in
            let with_rule =
              cleanup cat (Optimizer.force_rule_exhaustively rule cat bound)
            in
            let t_without =
              time_runs ~repeat (fun () ->
                  Executor.run_count cat without_rule)
            in
            let t_with =
              time_runs ~repeat (fun () -> Executor.run_count cat with_rule)
            in
            t_without /. t_with)
          instances
      in
      let n = List.length benefits in
      let maximum = List.fold_left Float.max neg_infinity benefits in
      let avg = List.fold_left ( +. ) 0. benefits /. float_of_int n in
      let wins = List.filter (fun b -> b > 1.) benefits in
      let avg_wins =
        match wins with
        | [] -> Float.nan
        | ws -> List.fold_left ( +. ) 0. ws /. float_of_int (List.length ws)
      in
      if Float.is_nan avg_wins then
        Format.printf "%-36s %11.2fx %11.2fx %12s@." label maximum avg
          "(no wins)"
      else
        Format.printf "%-36s %11.2fx %11.2fx %11.2fx@." label maximum avg
          avg_wins)
    (Workloads.table1_sweeps ());
  Format.printf
    "@.(benefit = elapsed without the rule / elapsed after firing it; \
     'Average over wins' averages only the cases where the rule helped)@."

(* ---------- partitioning strategies ---------- *)

let bench_partitioning ~msf ~repeat () =
  header
    (Printf.sprintf
       "GApply partitioning: sorting vs hashing (Section 5.2 remark, msf %g)"
       msf);
  let cat = Tpch_gen.catalog ~msf () in
  (* the paper's claim is that the *speedup over the baseline* is
     comparable whichever way GApply partitions *)
  Format.printf "%-4s %12s %12s %12s %16s %16s@." "" "baseline" "sort (ms)"
    "hash (ms)" "speedup (sort)" "speedup (hash)";
  List.iter
    (fun (name, gapply_src, baseline_src) ->
      let plan = optimize cat (bind cat gapply_src) in
      let baseline = optimize cat (bind cat baseline_src) in
      let t_base =
        time_runs ~repeat (fun () -> Executor.run_count cat baseline)
      in
      let t_sort =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~partition:Compile.Sort_partition ())
              cat plan)
      in
      let t_hash =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~partition:Compile.Hash_partition ())
              cat plan)
      in
      Format.printf "%-4s %12.1f %12.1f %12.1f %15.2fx %15.2fx@." name
        (ms t_base) (ms t_sort) (ms t_hash) (t_base /. t_sort)
        (t_base /. t_hash);
      record ~section:"partitioning" ~query:name
        [
          ("baseline_ms", Json.Float (ms t_base));
          ("sort_ms", Json.Float (ms t_sort));
          ("hash_ms", Json.Float (ms t_hash));
        ])
    Workloads.figure8_queries

(* ---------- multicore GApply (domain-pool execution phase) ---------- *)

let parallel_levels = [ 1; 2; 4; 8 ]

let bench_parallel ~msf ~repeat () =
  header
    (Printf.sprintf
       "Multicore GApply: domain-pool parallel execution phase (msf %g, \
        host has %d core(s))"
       msf
       (Domain.recommended_domain_count ()));
  let cat = Tpch_gen.catalog ~msf () in
  Format.printf "%-4s" "";
  List.iter (fun p -> Format.printf " %9s" (Printf.sprintf "p=%d (ms)" p))
    parallel_levels;
  Format.printf " %10s %10s@." "speedup@4" "identical";
  List.iter
    (fun (name, gapply_src, _) ->
      let plan = optimize cat (bind cat gapply_src) in
      let run_at p =
        Executor.run_count
          ~config:(Compile.config_with ~parallelism:p ())
          cat plan
      in
      let times =
        List.map (fun p -> (p, time_runs ~repeat (fun () -> run_at p)))
          parallel_levels
      in
      let t1 = List.assoc 1 times in
      let t4 = List.assoc 4 times in
      (* the headline claim: parallel output is tuple-identical (order
         included) to sequential output, clustering guarantee and all *)
      let sequential =
        Executor.run ~config:(Compile.config_with ~parallelism:1 ()) cat plan
      in
      let identical =
        List.for_all
          (fun p ->
            Relation.equal_as_list sequential
              (Executor.run
                 ~config:(Compile.config_with ~parallelism:p ())
                 cat plan))
          parallel_levels
      in
      Format.printf "%-4s" name;
      List.iter (fun (_, t) -> Format.printf " %9.1f" (ms t)) times;
      Format.printf " %9.2fx %10b@." (t1 /. t4) identical;
      record ~section:"parallel" ~query:name
        (List.map
           (fun (p, t) ->
             (Printf.sprintf "p%d_ms" p, Json.Float (ms t)))
           times
        @ [
            ("speedup_at_4", Json.Float (t1 /. t4));
            ("identical_output", Json.Bool identical);
          ]))
    Workloads.figure8_queries;
  Format.printf
    "@.(speedup@4 = parallelism-1 elapsed / parallelism-4 elapsed; the \
     execution phase runs each group's PGQ on a shared domain pool and \
     concatenates per-group results in group order)@."

(* ---------- client-side simulation (Section 5.1) ---------- *)

let bench_clientsim ~msf ~repeat () =
  header
    (Printf.sprintf
       "Client-side simulation of GApply vs native (Section 5.1, msf %g)"
       msf);
  let cat = Tpch_gen.catalog ~msf () in
  List.iter
    (fun (name, src) ->
      let plan = bind cat src in
      let t_native =
        time_runs ~repeat (fun () -> Executor.run cat plan)
      in
      let t_sim =
        time_runs ~repeat (fun () -> fst (Client_sim.run cat plan))
      in
      let _, phases = Client_sim.run cat plan in
      let accounted = Client_sim.total phases in
      Format.printf
        "%s: native %.1f ms, client-side elapsed %.1f ms, accounted (paper \
         formula) %.1f ms  ->  overhead %+.0f%% (accounted %+.0f%%)@."
        name (ms t_native) (ms t_sim) (ms accounted)
        (100. *. ((t_sim /. t_native) -. 1.))
        (100. *. ((accounted /. t_native) -. 1.));
      Format.printf
        "    phases: outer %.1f ms, partition %.1f ms (overestimate \
         correction %.1f ms), execute %.1f ms, accounted total %.1f ms@."
        (ms phases.Client_sim.outer_time)
        (ms phases.Client_sim.partition_time)
        (ms phases.Client_sim.overestimate_time)
        (ms phases.Client_sim.execute_time)
        (ms (Client_sim.total phases)))
    [ ("Q4", Workloads.q4_gapply); ("Q1", Workloads.q1_gapply) ];
  Format.printf
    "@.(the paper observed the client-side protocol costing ~20%% over \
     the server-side operator)@."

(* ---------- XML publishing pipeline ---------- *)

let bench_pipeline ~msf ~repeat () =
  header
    (Printf.sprintf
       "XML publishing: sorted outer union vs one GApply pass (msf %g)" msf);
  let cat = Tpch_gen.catalog ~msf () in
  let specs =
    [
      ("plain figure-1 view", Publish.of_view Xml_view.figure1);
      ("Q1 (nested parts + avg)", Flwr.compile Flwr.q1);
      ("Q1 extended (4 aggregates)", Flwr.compile Flwr.q1_extended);
      ( "group selection (exists)",
        Flwr.compile (Flwr.expensive_part_suppliers 2000.) );
      ( "group selection (aggregate)",
        Flwr.compile (Flwr.high_average_suppliers 1520.) );
    ]
  in
  Format.printf "%-28s %16s %14s %10s %6s@." "query" "outer union (ms)"
    "gapply (ms)" "speedup" "same?";
  List.iter
    (fun (name, spec) ->
      let ou_plan, ou_enc = Publish.outer_union_plan cat spec in
      let ga_plan, ga_enc = Publish.gapply_plan cat spec in
      let run plan enc () =
        let compiled = Compile.plan plan in
        let buf = Buffer.create 65536 in
        Tagger.tag_to_buffer enc (compiled.Compile.run (Env.make cat)) buf;
        Buffer.length buf
      in
      let t_ou = time_runs ~repeat (run ou_plan ou_enc) in
      let t_ga = time_runs ~repeat (run ga_plan ga_enc) in
      let same =
        Xml.equal_unordered
          (Tagger.publish ~strategy:Tagger.Sorted_outer_union cat spec)
          (Tagger.publish ~strategy:Tagger.Gapply_pass cat spec)
      in
      Format.printf "%-28s %16.1f %14.1f %9.2fx %6b@." name (ms t_ou)
        (ms t_ga) (t_ou /. t_ga) same)
    specs;
  (* the three-level customer -> order -> lineitem view with per-level
     aggregates (deep publisher) *)
  let deep = Deep_view.customer_orders in
  let run strategy () =
    Xml.to_string (Deep_publish.publish ~strategy cat deep)
  in
  let t_ou = time_runs ~repeat (run Deep_publish.Sorted_outer_union) in
  let t_ga = time_runs ~repeat (run Deep_publish.Gapply_pass) in
  let same =
    Xml.equal_unordered
      (Deep_publish.publish ~strategy:Deep_publish.Sorted_outer_union cat
         deep)
      (Deep_publish.publish ~strategy:Deep_publish.Gapply_pass cat deep)
  in
  Format.printf "%-28s %16.1f %14.1f %9.2fx %6b@."
    "3-level orders (3 aggs)" (ms t_ou) (ms t_ga) (t_ou /. t_ga) same

(* ---------- ablations of engine design choices (DESIGN.md §5) -------- *)

let bench_ablation ~msf ~repeat () =
  header
    (Printf.sprintf "Ablations of engine design choices (msf %g)" msf);
  let cat = Tpch_gen.catalog ~msf () in
  (* 1. uncorrelated-Apply caching: per-group scalar subqueries (Q2-Q4's
     averages) are evaluated once per group instead of once per row *)
  Format.printf "@.Uncorrelated-Apply caching:@.";
  Format.printf "%-4s %14s %14s %10s@." "" "cached (ms)" "uncached (ms)"
    "benefit";
  List.iter
    (fun (name, src) ->
      let plan = optimize cat (bind cat src) in
      let t_on =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~apply_cache:true ())
              cat plan)
      in
      let t_off =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~apply_cache:false ())
              cat plan)
      in
      Format.printf "%-4s %14.1f %14.1f %9.2fx@." name (ms t_on) (ms t_off)
        (t_off /. t_on))
    [
      ("Q2", Workloads.q2_gapply);
      ("Q3", Workloads.q3_gapply ());
      ("Q4", Workloads.q4_gapply);
    ];
  (* 1b. index nested-loop joins: probing a pre-built hash index on the
     join's inner side instead of re-building a hash table per query *)
  Catalog.create_index cat ~name:"part_pk" ~table:"part"
    ~columns:[ "p_partkey" ];
  Catalog.create_index cat ~name:"supplier_pk" ~table:"supplier"
    ~columns:[ "s_suppkey" ];
  Format.printf "@.Index nested-loop joins (indexes on part, supplier):@.";
  Format.printf "%-4s %16s %16s %10s@." "" "indexed (ms)" "hash build (ms)"
    "benefit";
  List.iter
    (fun (name, src) ->
      let plan = optimize cat (bind cat src) in
      let t_on =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~use_indexes:true ())
              cat plan)
      in
      let t_off =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~use_indexes:false ())
              cat plan)
      in
      Format.printf "%-4s %16.1f %16.1f %9.2fx@." name (ms t_on) (ms t_off)
        (t_off /. t_on))
    [
      ("Q1", Workloads.q1_gapply);
      ("Q2", Workloads.q2_baseline);
      ("Q4", Workloads.q4_baseline);
    ];
  (* 2. the Section 3.1 clustering guarantee: ordering the group list
     under hash partitioning *)
  Format.printf
    "@.Clustering guarantee (hash partitioning, ordered group list):@.";
  Format.printf "%-4s %16s %16s %10s@." "" "clustered (ms)"
    "unclustered (ms)" "overhead";
  List.iter
    (fun (name, src) ->
      let clustered = optimize cat (bind cat src) in
      let unclustered =
        Plan.rewrite_bottom_up
          (function
            | Plan.G_apply g -> Plan.G_apply { g with cluster = false }
            | p -> p)
          clustered
      in
      let t_c =
        time_runs ~repeat (fun () -> Executor.run_count cat clustered)
      in
      let t_u =
        time_runs ~repeat (fun () -> Executor.run_count cat unclustered)
      in
      Format.printf "%-4s %16.1f %16.1f %+9.1f%%@." name (ms t_c) (ms t_u)
        (100. *. ((t_c /. t_u) -. 1.)))
    [ ("Q1", Workloads.q1_gapply); ("Q4", Workloads.q4_gapply) ];
  (* 3. the parallel execution phase: sequential vs one domain per core
     (the full sweep lives in the dedicated 'parallel' section) *)
  Format.printf
    "@.Parallel execution phase (sequential vs auto, %d core(s)):@."
    (Domain.recommended_domain_count ());
  Format.printf "%-4s %16s %16s %10s@." "" "sequential (ms)" "auto (ms)"
    "benefit";
  List.iter
    (fun (name, src) ->
      let plan = optimize cat (bind cat src) in
      let t_seq =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~parallelism:1 ())
              cat plan)
      in
      let t_auto =
        time_runs ~repeat (fun () ->
            Executor.run_count
              ~config:(Compile.config_with ~parallelism:0 ())
              cat plan)
      in
      Format.printf "%-4s %16.1f %16.1f %9.2fx@." name (ms t_seq) (ms t_auto)
        (t_seq /. t_auto))
    [ ("Q1", Workloads.q1_gapply); ("Q4", Workloads.q4_gapply) ]

(* ---------- per-operator breakdown (EXPLAIN ANALYZE plumbing) -------- *)

let bench_analyze ~msf ~repeat () =
  header
    (Printf.sprintf
       "Per-operator breakdown via the Obs instrumentation (msf %g)" msf);
  let cat = Tpch_gen.catalog ~msf () in
  Format.printf "%-4s %12s %14s %10s %8s %24s@." "" "plain (ms)"
    "observed (ms)" "overhead" "rows ok" "trace open/next/close";
  List.iter
    (fun (name, gapply_src, _) ->
      let plan = optimize cat (bind cat gapply_src) in
      let env () = Env.make cat in
      (* baseline: the exact closure the engine runs with observe=None *)
      let plain = Compile.plan plan in
      let t_plain =
        time_runs ~repeat (fun () -> Cursor.length (plain.Compile.run (env ())))
      in
      (* metrics on, hook off — the configuration whose overhead the
         acceptance criterion bounds *)
      let sink = Obs.make () in
      let observed =
        Compile.plan ~config:(Compile.config_with ~observe:sink ()) plan
      in
      let t_obs =
        time_runs ~repeat (fun () ->
            Cursor.length (observed.Compile.run (env ())))
      in
      (* one clean run for the per-operator numbers *)
      Obs.reset sink;
      let root_rows = Cursor.length (observed.Compile.run (env ())) in
      let stats =
        match Obs.snapshot sink with
        | Some s -> Obs.flatten s
        | None -> []
      in
      let root_rows_match =
        match stats with (_, s) :: _ -> s.Obs.rows = root_rows | [] -> false
      in
      (* trace hook: count events from a separately-instrumented run
         (the hook fires from pool domains, hence the atomics) *)
      let opens = Atomic.make 0
      and nexts = Atomic.make 0
      and closes = Atomic.make 0 in
      let hook (e : Obs.event) =
        Atomic.incr
          (match e.Obs.kind with
          | Obs.Open -> opens
          | Obs.Next -> nexts
          | Obs.Close -> closes)
      in
      let traced =
        Compile.plan
          ~config:(Compile.config_with ~observe:(Obs.make ~hook ()) ())
          plan
      in
      ignore (Cursor.length (traced.Compile.run (env ())));
      let overhead_pct = 100. *. ((t_obs /. t_plain) -. 1.) in
      Format.printf "%-4s %12.1f %14.1f %+9.1f%% %8b %10d/%d/%d@." name
        (ms t_plain) (ms t_obs) overhead_pct root_rows_match
        (Atomic.get opens) (Atomic.get nexts) (Atomic.get closes);
      record ~section:"analyze" ~query:name
        [
          ("plain_ms", Json.Float (ms t_plain));
          ("observed_ms", Json.Float (ms t_obs));
          ("overhead_pct", Json.Float overhead_pct);
          ("root_rows", Json.Int root_rows);
          ("root_rows_match", Json.Bool root_rows_match);
          ("trace_opens", Json.Int (Atomic.get opens));
          ("trace_nexts", Json.Int (Atomic.get nexts));
          ("trace_closes", Json.Int (Atomic.get closes));
          ( "operators",
            Json.List
              (List.map
                 (fun (depth, (s : Obs.stat)) ->
                   Json.Obj
                     [
                       ("op", Json.Str s.Obs.op);
                       ("depth", Json.Int depth);
                       ("rows", Json.Int s.Obs.rows);
                       ("loops", Json.Int s.Obs.invocations);
                       ("groups", Json.Int s.Obs.partitions);
                       ( "time_ms",
                         Json.Float (float_of_int s.Obs.time_ns /. 1e6) );
                       ( "first_ms",
                         Json.Float (float_of_int s.Obs.ttft_ns /. 1e6) );
                     ])
                 stats) );
        ])
    Workloads.figure8_queries;
  Format.printf
    "@.(overhead = metrics-on / metrics-off elapsed on the same compiled \
     plan; trace counts come from a hook-instrumented run: one open per \
     operator invocation, one next per yielded tuple)@.";
  (* estimation quality + cost-based-vs-heuristic latency A/B, recorded
     under a separate section for the CI estimation gates.  Per-group
     operators report rows summed across invocations while the cost
     model estimates per invocation, so the estimate scales by loops
     before the q-error compares the two. *)
  Format.printf
    "@.Cost-model estimation quality and CBO warm-latency A/B:@.";
  Format.printf "%-4s %14s %6s %14s %18s@." "" "median q-err" "ops"
    "cbo warm (ms)" "heuristic warm (ms)";
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  List.iter
    (fun (name, gapply_src, _) ->
      Engine.set_cbo db true;
      let _, profile = Engine.analyze_profile db gapply_src in
      let q_errors =
        List.map
          (fun (p : Engine.op_profile) ->
            let obs = float_of_int p.Engine.obs_rows in
            let est =
              p.Engine.est_rows *. float_of_int (max 1 p.Engine.obs_loops)
            in
            (p, Float.abs (obs -. est) /. Float.max 1. obs))
          profile
      in
      let median =
        match List.sort Float.compare (List.map snd q_errors) with
        | [] -> 0.
        | sorted -> List.nth sorted (List.length sorted / 2)
      in
      let warm_time () =
        ignore (Engine.query db gapply_src);
        time_runs ~repeat (fun () -> ignore (Engine.query db gapply_src))
      in
      let t_cbo = warm_time () in
      Engine.set_cbo db false;
      let t_heuristic = warm_time () in
      Engine.set_cbo db true;
      Format.printf "%-4s %14.3f %6d %14.2f %18.2f@." name median
        (List.length q_errors) (ms t_cbo) (ms t_heuristic);
      record ~section:"cbo" ~query:name
        [
          ("median_q_error", Json.Float median);
          ("n_operators", Json.Int (List.length q_errors));
          ("cbo_warm_ms", Json.Float (ms t_cbo));
          ("heuristic_warm_ms", Json.Float (ms t_heuristic));
          ( "operators",
            Json.List
              (List.map
                 (fun ((p : Engine.op_profile), q) ->
                   Json.Obj
                     [
                       ("op", Json.Str p.Engine.op_name);
                       ("est_rows", Json.Float p.Engine.est_rows);
                       ("obs_rows", Json.Int p.Engine.obs_rows);
                       ("loops", Json.Int p.Engine.obs_loops);
                       ("q_error", Json.Float q);
                     ])
                 q_errors) );
        ])
    Workloads.figure8_queries;
  Format.printf
    "@.(q-error = |observed - estimated * loops| / observed per operator; \
     the warm A/B times the plan-cached execution with cost-based \
     optimization on vs off)@."

(* ---------- plan-cache throughput (prepared statements) ---------- *)

let bench_throughput ~msf ~repeat () =
  header
    (Printf.sprintf
       "Plan-cache throughput: cold vs warm, repeat sweep, concurrent \
        sessions (msf %g)"
       msf);
  (* 1. per-query cold vs warm execution: the warm path skips parse,
     bind, optimize and compile entirely *)
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  Format.printf "%-4s %12s %12s %10s@." "" "cold (ms)" "warm (ms)" "speedup";
  List.iter
    (fun (name, gapply_src, _) ->
      Engine.set_plan_cache_enabled db false;
      let t_cold =
        time_runs ~repeat (fun () -> Engine.query db gapply_src)
      in
      Engine.set_plan_cache_enabled db true;
      ignore (Engine.query db gapply_src);  (* warm the entry *)
      let t_warm =
        time_runs ~repeat (fun () -> Engine.query db gapply_src)
      in
      Format.printf "%-4s %12.2f %12.2f %9.2fx@." name (ms t_cold)
        (ms t_warm) (t_cold /. t_warm);
      record ~section:"throughput" ~query:name
        [
          ("cold_ms", Json.Float (ms t_cold));
          ("warm_ms", Json.Float (ms t_warm));
          ("speedup", Json.Float (t_cold /. t_warm));
        ])
    Workloads.figure8_queries;
  (* 2. single-session repeat sweep: Q1-Q4 executed 12 times each on a
     fresh engine — 4 cold preparations then hits, so the expected hit
     rate is 44/48 ~ 0.92 (the >= 0.9 acceptance gate) *)
  let queries =
    List.map (fun (name, src, _) -> (name, src)) Workloads.figure8_queries
  in
  let iterations = 12 in
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  let trace _ =
    List.concat
      (List.init iterations (fun _ -> List.map snd queries))
  in
  let sweep = Session.run ~concurrent:false db ~sessions:1 ~script:trace in
  let hit_rate = Cache_stats.hit_rate sweep.Session.cache in
  let saved_ms =
    float_of_int sweep.Session.cache.Cache_stats.saved_ns /. 1e6
  in
  Format.printf
    "@.Repeat sweep (Q1-Q4 x %d): %.0f statements/s, p50 %.2f ms, p99 %.2f \
     ms@.  cache: %a@."
    iterations sweep.Session.qps sweep.Session.p50_ms sweep.Session.p99_ms
    Cache_stats.pp sweep.Session.cache;
  record ~section:"throughput" ~query:"repeat-sweep"
    [
      ("iterations", Json.Int iterations);
      ("statements", Json.Int sweep.Session.statements);
      ("qps", Json.Float sweep.Session.qps);
      ("p50_ms", Json.Float sweep.Session.p50_ms);
      ("p99_ms", Json.Float sweep.Session.p99_ms);
      ("hits", Json.Int sweep.Session.cache.Cache_stats.hits);
      ("misses", Json.Int sweep.Session.cache.Cache_stats.misses);
      ("hit_rate", Json.Float hit_rate);
      ("prepare_saved_ms", Json.Float saved_ms);
    ];
  (* 3. concurrent sessions over the shared cache vs a sequential replay
     of the identical traces: digests must agree *)
  let sessions = 4 in
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  let concurrent = Session.run ~concurrent:true db ~sessions ~script:trace in
  let db' = Engine.create () in
  Engine.load_tpch db' ~msf;
  let sequential =
    Session.run ~concurrent:false db' ~sessions ~script:trace
  in
  let identical =
    Session.equal_results concurrent.Session.results
      sequential.Session.results
  in
  Format.printf
    "@.%d concurrent sessions: %.0f statements/s (sequential replay %.0f), \
     identical results: %b@.  cache: %a@."
    sessions concurrent.Session.qps sequential.Session.qps identical
    Cache_stats.pp concurrent.Session.cache;
  record ~section:"throughput" ~query:(Printf.sprintf "sessions-%d" sessions)
    [
      ("sessions", Json.Int sessions);
      ("statements", Json.Int concurrent.Session.statements);
      ("qps", Json.Float concurrent.Session.qps);
      ("sequential_qps", Json.Float sequential.Session.qps);
      ("p99_ms", Json.Float concurrent.Session.p99_ms);
      ("hits", Json.Int concurrent.Session.cache.Cache_stats.hits);
      ("misses", Json.Int concurrent.Session.cache.Cache_stats.misses);
      ( "hit_rate",
        Json.Float (Cache_stats.hit_rate concurrent.Session.cache) );
      ("identical", Json.Bool identical);
    ]

(* ---------- interactive transactions (MVCC) ---------- *)

(* Three records.  [readers-solo] / [readers-writer]: pooled reader
   statement latency with and without a concurrent committing writer on
   the same table — under snapshot isolation readers resolve visibility
   against a pinned timestamp and never wait on the writer, so the CI
   gate asserts the with-writer p99 shows no latency cliff and that no
   reader statement errored.  [writers-conflict]: two writers racing on
   one table under first-committer-wins; committed + conflicted must
   account for every transaction begun. *)
let bench_transactions ~msf:_ ~repeat:_ () =
  header
    "Interactive transactions: snapshot readers under a concurrent writer";
  let rounds = 40 in
  let readers = 3 in
  let fresh () =
    let db = Engine.create () in
    (match Engine.exec db "create table acct (a int, b int)" with
    | Engine.Failed e -> raise e
    | _ -> ());
    for i = 0 to 15 do
      let row j = Printf.sprintf "(%d, %d)" ((16 * i) + j) i in
      let values = String.concat ", " (List.init 16 row) in
      ignore (Engine.exec db ("insert into acct values " ^ values))
    done;
    db
  in
  let reader_trace =
    List.concat
      (List.init rounds (fun _ ->
           [ "begin"; "select acct.a from acct";
             "select acct.b from acct where acct.b > 4"; "commit" ]))
  in
  let writer_trace =
    List.concat
      (List.init rounds (fun i ->
           [
             "begin";
             Printf.sprintf "insert into acct values (%d, %d)"
               (10_000 + (2 * i)) i;
             Printf.sprintf "insert into acct values (%d, %d)"
               (10_001 + (2 * i)) i;
             "commit";
           ]))
  in
  (* reader-only latency pool: session 0 of the mixed run is the writer *)
  let percentile p (report : Session.report) ~skip_writer =
    let pool =
      Array.to_list report.Session.results
      |> List.filter (fun (r : Session.session_result) ->
             not (skip_writer && r.Session.id = 0))
      |> List.concat_map (fun (r : Session.session_result) ->
             Array.to_list r.Session.latencies_ns)
      |> List.sort compare |> Array.of_list
    in
    if Array.length pool = 0 then 0.
    else
      let idx =
        min (Array.length pool - 1)
          (int_of_float (p *. float_of_int (Array.length pool)))
      in
      float_of_int pool.(idx) /. 1e6
  in
  let reader_errors (report : Session.report) ~skip_writer =
    Array.to_list report.Session.results
    |> List.filter (fun (r : Session.session_result) ->
           not (skip_writer && r.Session.id = 0))
    |> List.fold_left
         (fun acc (r : Session.session_result) -> acc + r.Session.errors)
         0
  in
  let run_pair ~mvcc =
    let solo =
      Session.run ~concurrent:true (fresh ()) ~sessions:readers
        ~script:(fun _ -> reader_trace)
    in
    let db = if mvcc then Engine.create () else Engine.create ~mvcc:false () in
    (match Engine.exec db "create table acct (a int, b int)" with
    | Engine.Failed e -> raise e
    | _ -> ());
    for i = 0 to 15 do
      let row j = Printf.sprintf "(%d, %d)" ((16 * i) + j) i in
      let values = String.concat ", " (List.init 16 row) in
      ignore (Engine.exec db ("insert into acct values " ^ values))
    done;
    let mixed =
      Session.run ~concurrent:true db ~sessions:(readers + 1)
        ~script:(fun i -> if i = 0 then writer_trace else reader_trace)
    in
    (solo, mixed, Txn_stats.snapshot (Engine.txn_stats db))
  in
  let solo, mixed, stats = run_pair ~mvcc:true in
  let solo_p50 = percentile 0.50 solo ~skip_writer:false
  and solo_p99 = percentile 0.99 solo ~skip_writer:false
  and with_p50 = percentile 0.50 mixed ~skip_writer:true
  and with_p99 = percentile 0.99 mixed ~skip_writer:true in
  let errors = reader_errors mixed ~skip_writer:true in
  Format.printf
    "%d snapshot readers (%d txns each): solo p50 %.3f ms p99 %.3f ms@.  \
     with concurrent writer: p50 %.3f ms p99 %.3f ms (reader errors %d)@.  \
     writer: %d committed, %d conflicts@."
    readers rounds solo_p50 solo_p99 with_p50 with_p99 errors stats.committed
    stats.conflicts;
  record ~section:"transactions" ~query:"readers-solo"
    [
      ("sessions", Json.Int readers);
      ("txns_per_session", Json.Int rounds);
      ("p50_ms", Json.Float solo_p50);
      ("p99_ms", Json.Float solo_p99);
      ("qps", Json.Float solo.Session.qps);
    ];
  record ~section:"transactions" ~query:"readers-writer"
    [
      ("sessions", Json.Int (readers + 1));
      ("txns_per_session", Json.Int rounds);
      ("p50_ms", Json.Float with_p50);
      ("p99_ms", Json.Float with_p99);
      ("reader_errors", Json.Int errors);
      ("solo_p99_ms", Json.Float solo_p99);
      ( "p99_ratio",
        Json.Float (if solo_p99 > 0. then with_p99 /. solo_p99 else 0.) );
      ("writer_committed", Json.Int stats.committed);
      ("writer_conflicts", Json.Int stats.conflicts);
      ("mvcc", Json.Bool true);
    ];
  (* the same mixed workload with the kill-switch thrown: reads resolve
     against latest-committed instead of a pinned snapshot — recorded so
     the JSON trail shows the baseline never silently becomes the
     default *)
  let _, mixed_off, _ = run_pair ~mvcc:false in
  let off_p99 = percentile 0.99 mixed_off ~skip_writer:true in
  Format.printf "  GAPPLY_MVCC=off baseline: reader p99 %.3f ms@." off_p99;
  record ~section:"transactions" ~query:"readers-writer-mvcc-off"
    [
      ("p99_ms", Json.Float off_p99);
      ( "reader_errors",
        Json.Int (reader_errors mixed_off ~skip_writer:true) );
      ("mvcc", Json.Bool false);
    ];
  (* two writers race on one table: first-committer-wins means begun
     transactions partition exactly into committed + conflicted *)
  let db = fresh () in
  let writer_script i =
    List.concat
      (List.init rounds (fun k ->
           [
             "begin";
             Printf.sprintf "insert into acct values (%d, %d)"
               (50_000 + (1000 * i) + k) i;
             "commit";
           ]))
  in
  let race =
    Session.run ~concurrent:true db ~sessions:2 ~script:writer_script
  in
  let s = Txn_stats.snapshot (Engine.txn_stats db) in
  let accounted = s.committed + s.conflicts + s.rolled_back = s.begun in
  Format.printf
    "two-writer race (%d txns): begun %d = committed %d + conflicts %d \
     (accounted %b)@."
    (2 * rounds) s.begun s.committed s.conflicts accounted;
  record ~section:"transactions" ~query:"writers-conflict"
    [
      ("txns", Json.Int (2 * rounds));
      ("begun", Json.Int s.begun);
      ("committed", Json.Int s.committed);
      ("conflicts", Json.Int s.conflicts);
      ("accounted", Json.Bool accounted);
      ("qps", Json.Float race.Session.qps);
    ]

(* ---------- resource governor ---------- *)

(* Two records.  [timeout-abort]: a 50 ms wall-clock budget must abort
   the slow correlated Q2 plan almost immediately with the typed
   timeout error — the CI gate asserts abort_ms < 500.
   [memory-downgrade]: a ceiling between the sort- and hash-partition
   materialization peaks forces the documented hash -> sort downgrade,
   which must still complete. *)
let bench_governor ~msf ~repeat:_ () =
  header (Printf.sprintf "Resource governor (msf %g)" msf);
  (* the correlated plan is quadratic in the outer cardinality, so a
     floor on the scale factor keeps it comfortably past the budget
     even when the sweep runs at a small --msf *)
  let msf' = Float.max msf 4.0 in
  let timeout_ms = 50 in
  let db = Engine.create ~timeout_ms () in
  Engine.load_tpch db ~msf:msf';
  let t0 = Metrics.now_ns () in
  let outcome = Engine.exec db Workloads.q2_correlated in
  let abort_ms = float_of_int (Metrics.now_ns () - t0) /. 1e6 in
  let kind =
    match outcome with
    | Engine.Failed (Errors.Resource_error v) ->
        Errors.resource_kind_to_string v.Errors.kind
    | Engine.Rows _ -> "completed"
    | _ -> "unexpected"
  in
  Format.printf
    "timeout: %d ms budget on correlated Q2 (msf %g) -> %s after %.1f ms \
     wall@."
    timeout_ms msf' kind abort_ms;
  record ~section:"governor" ~query:"timeout-abort"
    [
      ("timeout_ms", Json.Int timeout_ms);
      ("abort_ms", Json.Float abort_ms);
      ("kind", Json.Str kind);
      ("aborted", Json.Bool (kind = "timeout"));
    ];
  let peak ~partition =
    let db = Engine.create ~partition ~mem_limit:max_int () in
    Engine.load_tpch db ~msf;
    ignore (Engine.query db Workloads.q1_gapply);
    (Gov_stats.snapshot (Engine.gov_stats db)).Gov_stats.peak_bytes
  in
  let hash_peak = peak ~partition:Compile.Hash_partition in
  let sort_peak = peak ~partition:Compile.Sort_partition in
  let limit = (hash_peak + sort_peak) / 2 in
  let db = Engine.create ~partition:Compile.Hash_partition ~mem_limit:limit () in
  Engine.load_tpch db ~msf;
  let t0 = Metrics.now_ns () in
  let completed =
    match Engine.exec db Workloads.q1_gapply with
    | Engine.Rows _ -> true
    | _ -> false
  in
  let elapsed_ms = float_of_int (Metrics.now_ns () - t0) /. 1e6 in
  let downgrades =
    (Gov_stats.snapshot (Engine.gov_stats db)).Gov_stats.downgrades
  in
  Format.printf
    "memory: Q1 peaks %d B (hash) vs %d B (sort); ceiling %d B -> %s via \
     %d downgrade(s) in %.1f ms@."
    hash_peak sort_peak limit
    (if completed then "completed" else "failed")
    downgrades elapsed_ms;
  record ~section:"governor" ~query:"memory-downgrade"
    [
      ("hash_peak_bytes", Json.Int hash_peak);
      ("sort_peak_bytes", Json.Int sort_peak);
      ("limit_bytes", Json.Int limit);
      ("downgrades", Json.Int downgrades);
      ("completed", Json.Bool completed);
      ("elapsed_ms", Json.Float elapsed_ms);
    ]

(* ---------- durability (WAL + snapshots + recovery) ---------- *)

(* Three records per concern.  [ingest-*]: the same row-at-a-time INSERT
   workload acknowledged under no-data-dir / off / lazy / strict — the
   cost of the log is the delta, and the fsync counters prove the sync
   policy did what it claims (strict ~ one fsync per commit, lazy a
   fraction, off none).  [q1..q4]: the read path never touches the WAL,
   so strict-vs-off on Q1-Q4 is the CI-gated "logging leaves queries
   alone" check (< 2x, generous because msf 0.05 timings are sub-ms).
   [recovery-*]: wall-clock to reopen a directory as the WAL grows, and
   with a snapshot in place of the log. *)
let bench_durability ~msf ~repeat () =
  header
    (Printf.sprintf
       "Durability: WAL logging overhead and recovery (msf %g)" msf);
  let dir_counter = ref 0 in
  let fresh_dir () =
    incr dir_counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gapply_bench_dur_%d_%d" (Unix.getpid ())
           !dir_counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir
  in
  let exec_ok db sql =
    match Engine.exec db sql with
    | Engine.Message _ -> ()
    | _ -> failwith ("unexpected outcome for: " ^ sql)
  in
  (* 1. ingest: n acknowledged single-row INSERTs per durability mode *)
  let n = 500 in
  Format.printf "@.Ingest (%d row-at-a-time INSERTs):@." n;
  Format.printf "%-10s %12s %10s %9s %8s %10s@." "mode" "elapsed (ms)"
    "rows/s" "appends" "fsyncs" "batch";
  List.iter
    (fun (label, make) ->
      let last_stats = ref None in
      let t =
        time_runs ~repeat (fun () ->
            let db = make () in
            exec_ok db "create table ingest (a int, b varchar)";
            for i = 1 to n do
              exec_ok db
                (Printf.sprintf "insert into ingest values (%d, 'row-%d')" i
                   i)
            done;
            last_stats := Engine.wal_stats db;
            Engine.close db;
            0)
      in
      let appends, fsyncs, batch =
        match !last_stats with
        | Some s ->
            (s.Wal_stats.appends, s.Wal_stats.fsyncs, Wal_stats.mean_batch s)
        | None -> (0, 0, 0.)
      in
      Format.printf "%-10s %12.1f %10.0f %9d %8d %10.1f@." label (ms t)
        (float_of_int n /. t) appends fsyncs batch;
      record ~section:"durability" ~query:("ingest-" ^ label)
        [
          ("rows", Json.Int n);
          ("elapsed_ms", Json.Float (ms t));
          ("rows_per_s", Json.Float (float_of_int n /. t));
          ("appends", Json.Int appends);
          ("fsyncs", Json.Int fsyncs);
          ("mean_batch", Json.Float batch);
        ])
    [
      ("memory", fun () -> Engine.create ());
      ( "off",
        fun () ->
          Engine.create ~data_dir:(fresh_dir ()) ~durability:Store.Off () );
      ( "lazy",
        fun () ->
          Engine.create ~data_dir:(fresh_dir ()) ~durability:Store.Lazy () );
      ( "strict",
        fun () ->
          Engine.create ~data_dir:(fresh_dir ()) ~durability:Store.Strict ()
      );
    ];
  (* 2. read path: Q1-Q4 on a strict-durability engine vs durability off
     — queries never touch the WAL, so these must track each other (the
     CI gate allows 2x plus a small absolute slack for timer noise) *)
  let repeat' = max repeat 3 in
  let durable mode =
    let db = Engine.create ~data_dir:(fresh_dir ()) ~durability:mode () in
    Engine.load_tpch db ~msf;
    db
  in
  let strict = durable Store.Strict in
  let off = durable Store.Off in
  Format.printf "@.Query overhead (read path, strict vs off):@.";
  Format.printf "%-4s %12s %12s %10s@." "" "off (ms)" "strict (ms)"
    "overhead";
  List.iter
    (fun (name, src, _) ->
      let t_off = time_runs ~repeat:repeat' (fun () -> Engine.query off src) in
      let t_strict =
        time_runs ~repeat:repeat' (fun () -> Engine.query strict src)
      in
      Format.printf "%-4s %12.2f %12.2f %9.2fx@." name (ms t_off)
        (ms t_strict) (t_strict /. t_off);
      record ~section:"durability" ~query:name
        [
          ("off_ms", Json.Float (ms t_off));
          ("strict_ms", Json.Float (ms t_strict));
          ("overhead", Json.Float (t_strict /. t_off));
        ])
    Workloads.figure8_queries;
  Engine.close strict;
  Engine.close off;
  (* 3. recovery: reopen time as the WAL grows, then with a snapshot
     standing in for the whole log *)
  Format.printf "@.Recovery (reopen a data directory):@.";
  Format.printf "%-18s %10s %10s %12s %10s@." "" "records" "replayed"
    "recover (ms)" "snapshot";
  let build k ~checkpoint =
    let dir = fresh_dir () in
    let db = Engine.create ~data_dir:dir ~durability:Store.Lazy () in
    exec_ok db "create table r (a int, b varchar)";
    for i = 1 to k do
      exec_ok db
        (Printf.sprintf "insert into r values (%d, 'payload-%d')" i i)
    done;
    if checkpoint then ignore (Engine.checkpoint db);
    Engine.close db;
    dir
  in
  let recover_once label k ~checkpoint =
    let dir = build k ~checkpoint in
    let t0 = Metrics.now_ns () in
    let db = Engine.create ~data_dir:dir () in
    let recover_ms = float_of_int (Metrics.now_ns () - t0) /. 1e6 in
    let replayed, snapshot_loaded =
      match Engine.recovery_outcome db with
      | Some o -> (o.Recovery.replayed, o.Recovery.snapshot_loaded)
      | None -> (0, false)
    in
    Engine.close db;
    Format.printf "%-18s %10d %10d %12.1f %10b@." label (k + 1) replayed
      recover_ms snapshot_loaded;
    record ~section:"durability" ~query:label
      [
        ("records", Json.Int (k + 1));
        ("replayed", Json.Int replayed);
        ("recover_ms", Json.Float recover_ms);
        ("snapshot_loaded", Json.Bool snapshot_loaded);
      ]
  in
  List.iter
    (fun k -> recover_once (Printf.sprintf "recovery-%d" k) k ~checkpoint:false)
    [ 100; 400; 1600 ];
  recover_once "recovery-snapshot" 1600 ~checkpoint:true;
  Format.printf
    "@.(strict acknowledges after the commit fsync; lazy group-commits \
     every 64 records; off never touches the WAL — recovery replays the \
     log suffix past the newest snapshot)@."

(* ---------- Bechamel micro-benchmarks ---------- *)

let bench_micro () =
  header "Bechamel micro-benchmarks (ns/run, monotonic clock)";
  let cat = Tpch_gen.catalog ~msf:0.2 () in
  let compiled src =
    let plan = optimize cat (bind cat src) in
    let c = Compile.plan plan in
    fun () -> Cursor.length (c.Compile.run (Env.make cat))
  in
  let open Bechamel in
  let test_of (name, src) =
    Test.make ~name (Staged.stage (compiled src))
  in
  let tests =
    List.map test_of
      [
        ("q1-gapply", Workloads.q1_gapply);
        ("q1-baseline", Workloads.q1_baseline);
        ("q2-gapply", Workloads.q2_gapply);
        ("q2-baseline", Workloads.q2_baseline);
        ("q4-gapply", Workloads.q4_gapply);
        ("q4-baseline", Workloads.q4_baseline);
        ( "groupby-vs-gapply",
          "select ps_suppkey, avg(p_retailprice) from partsupp, part \
           where ps_partkey = p_partkey group by ps_suppkey" );
      ]
  in
  let grouped = Test.make_grouped ~name:"gapply" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Format.printf "%-28s %14.0f ns/run@." name est)
    (List.sort compare !rows)

(* ---------- vectorized execution ---------- *)

(* Batch-at-a-time execution vs the scalar Volcano path, on the warm
   plan-cache path of Q1 (so parse/bind/optimize/compile is out of the
   measurement): a batch-size sweep, a per-operator breakdown under
   instrumentation, and a dictionary-encoding A/B.  Runs at a floor of
   msf 0.5 — the CI gate reads the sweep's speedup, and sub-millisecond
   runs at tiny scale factors drown it in noise. *)
let bench_vectorized ~msf ~repeat () =
  let msf = Float.max msf 0.5
  and repeat = max repeat 5 in
  header
    (Printf.sprintf "Vectorized execution: batch-size sweep on warm Q1 \
                     (msf %g)" msf);
  (* one engine for every setting — the sweep flips the [batch_size]
     knob (the plan cache key-splits per setting, so each sample runs
     its own warm entry).  Samples are interleaved round-robin across
     the settings so they see identical heap / clock drift, and each
     setting reports its median (GC work is part of what a setting
     costs, so a minimum would flatter the allocation-heavy paths). *)
  let sizes = [| 0; 64; 256; 1024; 4096 |] in
  let rounds = max (3 * repeat) 21 in
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  Array.iter
    (fun batch_size ->
      Engine.set_batch_size db batch_size;
      ignore (Engine.query db Workloads.q1_gapply))
    sizes;
  Gc.compact ();
  let samples = Array.map (fun _ -> []) sizes in
  for _ = 1 to rounds do
    Array.iteri
      (fun i batch_size ->
        Engine.set_batch_size db batch_size;
        let t0 = Metrics.now_ns () in
        ignore (Engine.query db Workloads.q1_gapply);
        let t = float_of_int (Metrics.now_ns () - t0) /. 1e9 in
        samples.(i) <- t :: samples.(i))
      sizes
  done;
  let median l =
    let sorted = List.sort compare l in
    List.nth sorted (List.length sorted / 2)
  in
  let medians = Array.map median samples in
  let t_scalar = medians.(0) in
  Format.printf "%-12s %14s %10s@." "batch size" "warm Q1 (ms)" "speedup";
  Array.iteri
    (fun i batch_size ->
      let t = medians.(i) in
      Format.printf "%-12d %14.2f %9.2fx@." batch_size (ms t)
        (t_scalar /. t);
      record ~section:"vectorized"
        ~query:(Printf.sprintf "q1-batch-%d" batch_size)
        [
          ("batch_size", Json.Int batch_size);
          ("warm_ms", Json.Float (ms t));
          ("scalar_ms", Json.Float (ms t_scalar));
          ("speedup", Json.Float (t_scalar /. t));
        ])
    sizes;
  (* per-operator breakdown: the same optimized Q1 plan compiled twice
     (scalar and batched) under fresh metric sinks, paired by preorder
     position.  The two compilations run interleaved so heap growth and
     GC slices land on both sides alike, and enough rounds that a
     single major collection cannot tilt a side's total. *)
  Format.printf "@.Per-operator inclusive time, scalar vs batched:@.";
  let cat = Tpch_gen.catalog ~msf () in
  let instrument_reps = max (5 * repeat) 25 in
  let instrumented_pair plan =
    let make batch_size =
      let sink = Obs.make () in
      let compiled =
        Compile.plan
          ~config:(Compile.config_with ~batch_size ~observe:sink ())
          plan
      in
      (sink, compiled)
    in
    let sink_s, compiled_s = make 0
    and sink_b, compiled_b = make Batch.default_size in
    ignore (Executor.run_compiled cat compiled_s);
    ignore (Executor.run_compiled cat compiled_b);
    Obs.reset sink_s;
    Obs.reset sink_b;
    Gc.compact ();
    for _ = 1 to instrument_reps do
      ignore (Executor.run_compiled cat compiled_s);
      ignore (Executor.run_compiled cat compiled_b)
    done;
    let flat sink =
      match Obs.snapshot sink with
      | Some stat -> Obs.flatten stat
      | None -> []
    in
    (flat sink_s, flat sink_b)
  in
  let plan = optimize cat (bind cat Workloads.q1_gapply) in
  let scalar_ops, batched_ops = instrumented_pair plan in
  Format.printf "%-28s %12s %13s %10s@." "" "scalar (ms)" "batched (ms)"
    "speedup";
  List.iter2
    (fun (depth, (s : Obs.stat)) (_, (b : Obs.stat)) ->
      let per_run ns = ms (float_of_int ns /. 1e9 /. float_of_int instrument_reps) in
      let t_s = per_run s.Obs.time_ns and t_b = per_run b.Obs.time_ns in
      Format.printf "%-28s %12.3f %13.3f %9.2fx@."
        (String.make (2 * depth) ' ' ^ s.Obs.op)
        t_s t_b
        (if t_b > 0. then t_s /. t_b else Float.nan);
      record ~section:"vectorized" ~query:("operator-" ^ s.Obs.op)
        [
          ("depth", Json.Int depth);
          ("scalar_ms", Json.Float t_s);
          ("batched_ms", Json.Float t_b);
          ("batches", Json.Int b.Obs.batches);
        ])
    scalar_ops batched_ops;
  (* a straight scan→select→project→aggregate pipeline: the optimized
     Q1 plan folds its predicate into the join, so this is where the
     Select operator's own batch loop shows up in the breakdown *)
  Format.printf "@.Filter pipeline (select/project/aggregate):@.";
  let fplan =
    optimize cat
      (bind cat
         "select avg(ps_supplycost) from partsupp where ps_availqty > 500")
  in
  let fscalar, fbatched = instrumented_pair fplan in
  List.iter2
    (fun (depth, (s : Obs.stat)) (_, (b : Obs.stat)) ->
      let per_run ns = ms (float_of_int ns /. 1e9 /. float_of_int instrument_reps) in
      let t_s = per_run s.Obs.time_ns and t_b = per_run b.Obs.time_ns in
      Format.printf "%-28s %12.3f %13.3f %9.2fx@."
        (String.make (2 * depth) ' ' ^ s.Obs.op)
        t_s t_b
        (if t_b > 0. then t_s /. t_b else Float.nan);
      record ~section:"vectorized" ~query:("operator-" ^ s.Obs.op)
        [
          ("depth", Json.Int depth);
          ("scalar_ms", Json.Float t_s);
          ("batched_ms", Json.Float t_b);
          ("batches", Json.Int b.Obs.batches);
        ])
    fscalar fbatched;
  (* headline: the root operator's inclusive time is the whole warm Q1
     execution in EXPLAIN ANALYZE terms — the per-operator gate's
     denominator.  (End-to-end engine time is the sweep above; the
     instrumented ratio is larger because per-row observation hooks are
     exactly the kind of per-tuple overhead batching amortizes.) *)
  (match (scalar_ops, batched_ops) with
  | (_, (root_s : Obs.stat)) :: _, (_, (root_b : Obs.stat)) :: _ ->
      let per_run ns = ms (float_of_int ns /. 1e9 /. float_of_int instrument_reps) in
      let t_s = per_run root_s.Obs.time_ns
      and t_b = per_run root_b.Obs.time_ns in
      Format.printf
        "@.warm Q1, EXPLAIN ANALYZE terms: scalar %.3f ms  batched %.3f ms \
         %9.2fx@."
        t_s t_b
        (if t_b > 0. then t_s /. t_b else Float.nan);
      record ~section:"vectorized" ~query:"q1-warm-analyze"
        [
          ("scalar_ms", Json.Float t_s);
          ("batched_ms", Json.Float t_b);
          ("speedup", Json.Float (if t_b > 0. then t_s /. t_b else 0.));
        ]
  | _ -> ());
  (* dictionary A/B: identical engines except for the encoding gate *)
  Format.printf "@.Dictionary encoding A/B (warm Q1):@.";
  let warm_q1 () =
    let db = Engine.create () in
    Engine.load_tpch db ~msf;
    ignore (Engine.query db Workloads.q1_gapply);
    time_runs ~repeat (fun () -> Engine.query db Workloads.q1_gapply)
  in
  let was = Dict.enabled () in
  let t_dict, t_plain =
    Fun.protect
      ~finally:(fun () -> Dict.set_enabled was)
      (fun () ->
        Dict.set_enabled true;
        let t_dict = warm_q1 () in
        Dict.set_enabled false;
        let t_plain = warm_q1 () in
        (t_dict, t_plain))
  in
  Format.printf "dict on %.2f ms   dict off %.2f ms   ratio %.2fx@."
    (ms t_dict) (ms t_plain) (t_plain /. t_dict);
  record ~section:"vectorized" ~query:"q1-dict-ab"
    [
      ("dict_on_ms", Json.Float (ms t_dict));
      ("dict_off_ms", Json.Float (ms t_plain));
      ("speedup", Json.Float (t_plain /. t_dict));
    ]

(* ---------- section: network server (open-loop admission) ---------- *)

(* Open-loop load against a real loopback server: requests fire on a
   fixed schedule regardless of completions (each driver thread owns an
   interleaved slice of the schedule), so queueing delay lands in the
   measured latencies instead of silently throttling the offered rate —
   the coordinated-omission trap a closed-loop driver falls into.
   Latency is send-to-response on the wire; percentiles cover admitted
   statements only, sheds are counted separately.  One run below
   measured capacity (shedding must not engage) and one at 2x capacity
   (typed sheds must engage while admitted latency stays bounded by the
   admission deadline plus service time). *)

let bench_server ~msf ~repeat:_ () =
  (* a deliberately heavy statement keeps capacity at tens of
     statements/s, so 2x overload is reachable from a handful of driver
     threads; cap the scale so full-msf runs stay bounded *)
  let msf = Float.min msf 0.2 in
  Format.printf "@.=== Network server: open-loop admission (msf %g) ===@." msf;
  let stmt = "select count(*) as n from lineitem l1, lineitem l2" in
  let admission_timeout_ms = 1000 in
  let cfg =
    {
      Server.host = "127.0.0.1";
      port = 0;
      acceptors = 2;
      max_concurrent = 4;
      queue_depth = 16;
      admission_timeout_ms;
      per_client_cap = 0;
      idle_timeout_ms = 0;
      http_port = None;
    }
  in
  let db = Engine.create () in
  Engine.load_tpch db ~msf;
  let stats = Net_stats.create () in
  let srv = Server.start ~stats cfg db in
  let port = Server.port srv in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Engine.close db)
    (fun () ->
      let query_once c =
        match Net_client.query c stmt with
        | Wire.Rows _ -> `Ok
        | Wire.Overloaded _ -> `Shed
        | _ -> `Failed
      in
      (* closed-loop capacity probe: gate-many workers back to back *)
      let capacity_qps =
        let per_worker = 4 in
        let completed = Atomic.make 0 in
        let t0 = Metrics.now_ns () in
        let ts =
          List.init cfg.Server.max_concurrent (fun _ ->
              Thread.create
                (fun () ->
                  let c = Net_client.connect ~port () in
                  for _ = 1 to per_worker do
                    match query_once c with
                    | `Ok -> Atomic.incr completed
                    | _ -> ()
                  done;
                  ignore (Net_client.quit c))
                ())
        in
        List.iter Thread.join ts;
        let dt = float_of_int (Metrics.now_ns () - t0) /. 1e9 in
        float_of_int (Atomic.get completed) /. dt
      in
      Format.printf "capacity (closed loop, %d workers): %.1f statements/s@."
        cfg.Server.max_concurrent capacity_qps;
      let open_loop ~rate ~n ~workers =
        let mu = Mutex.create () in
        let admitted = ref [] and sheds = ref 0 and failed = ref 0 in
        let t0 = Metrics.now_ns () in
        let fire i c =
          let sched = t0 + int_of_float (float_of_int i /. rate *. 1e9) in
          let rec hold () =
            let now = Metrics.now_ns () in
            if now < sched then begin
              Unix.sleepf
                (Float.min 0.01 (float_of_int (sched - now) /. 1e9));
              hold ()
            end
          in
          hold ();
          let t = Metrics.now_ns () in
          let r = query_once c in
          let lat_ms = float_of_int (Metrics.now_ns () - t) /. 1e6 in
          Mutex.protect mu (fun () ->
              match r with
              | `Ok -> admitted := lat_ms :: !admitted
              | `Shed -> incr sheds
              | `Failed -> incr failed)
        in
        let ts =
          List.init workers (fun w ->
              Thread.create
                (fun () ->
                  let c = Net_client.connect ~port () in
                  let i = ref w in
                  while !i < n do
                    fire !i c;
                    i := !i + workers
                  done;
                  ignore (Net_client.quit c))
                ())
        in
        List.iter Thread.join ts;
        let lats = Array.of_list !admitted in
        Array.sort compare lats;
        let pct p =
          if Array.length lats = 0 then Float.nan
          else
            lats.(Int.min
                    (Array.length lats - 1)
                    (int_of_float (p *. float_of_int (Array.length lats))))
        in
        (Array.length lats, pct, !sheds, !failed)
      in
      let run label rate n =
        (* enough driver threads that offered in-flight load can exceed
           gate + queue — otherwise the drivers themselves throttle the
           open loop and shedding never engages *)
        let workers = cfg.Server.max_concurrent + cfg.Server.queue_depth + 12 in
        let adm, pct, sheds, failed = open_loop ~rate ~n ~workers in
        Format.printf
          "%-14s offered %6.1f/s  admitted %3d  shed %3d  p50 %7.1f ms  \
           p99 %7.1f ms  p99.9 %7.1f ms@."
          label rate adm sheds (pct 0.50) (pct 0.99) (pct 0.999);
        record ~section:"server" ~query:label
          [
            ("offered_qps", Json.Float rate);
            ("capacity_qps", Json.Float capacity_qps);
            ("requests", Json.Int n);
            ("admitted", Json.Int adm);
            ("shed", Json.Int sheds);
            ("failed", Json.Int failed);
            ("shed_rate", Json.Float (float_of_int sheds /. float_of_int n));
            ("p50_ms", Json.Float (pct 0.50));
            ("p99_ms", Json.Float (pct 0.99));
            ("p999_ms", Json.Float (pct 0.999));
            ("max_concurrent", Json.Int cfg.Server.max_concurrent);
            ("queue_depth", Json.Int cfg.Server.queue_depth);
            ("admission_timeout_ms", Json.Int admission_timeout_ms);
          ]
      in
      run "open-loop-0.5x" (0.5 *. capacity_qps) 24;
      run "open-loop-2x" (2.0 *. capacity_qps) 96;
      Format.printf "server counters: %a@." Net_stats.pp
        (Net_stats.snapshot stats))

(* ---------- replication: apply lag, catch-up, failover ---------- *)

(* Workload: a primary ingesting acknowledged single-row INSERTs under
   strict durability while a live replica applies the shipped WAL over
   loopback.  Reported: steady-state apply lag sampled from the
   replica's position gauges (primary-WAL bytes), wall-clock catch-up
   after the last acknowledgement, applied commit units per second, and
   a failover at the end — primary killed after convergence, replica
   promoted — with the count of acknowledged rows missing on the new
   primary (failover_lost_rows, gated at exactly 0 in CI). *)
let bench_replication ~msf:_ ~repeat:_ () =
  Format.printf "@.=== Replication: apply lag and failover ===@.";
  let fresh_dir tag =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gapply_bench_repl_%s_%d" tag (Unix.getpid ()))
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir
  in
  let exec_ok db sql =
    match Engine.exec db sql with
    | Engine.Message _ -> ()
    | _ -> failwith ("unexpected outcome for: " ^ sql)
  in
  let n = 1500 in
  let pdb =
    Engine.create ~data_dir:(fresh_dir "p") ~durability:Store.Strict ()
  in
  let cfg =
    {
      Server.host = "127.0.0.1";
      port = 0;
      acceptors = 2;
      max_concurrent = 4;
      queue_depth = 16;
      admission_timeout_ms = 1000;
      per_client_cap = 0;
      idle_timeout_ms = 0;
      http_port = None;
    }
  in
  let srv = Server.start cfg pdb in
  let rdb =
    Engine.create ~data_dir:(fresh_dir "r") ~durability:Store.Strict ()
  in
  let rep =
    Repl.start_replica ~host:"127.0.0.1" ~port:(Server.port srv) rdb
  in
  exec_ok pdb "create table ingest (a int, b varchar)";
  let lag_samples = ref [] in
  let t0 = Metrics.now_ns () in
  for i = 1 to n do
    exec_ok pdb (Printf.sprintf "insert into ingest values (%d, 'row-%d')" i i);
    if i mod 25 = 0 then
      lag_samples :=
        Repl_stats.lag_bytes (Repl_stats.snapshot (Repl.replica_stats rep))
        :: !lag_samples
  done;
  let ingest_ms = float_of_int (Metrics.now_ns () - t0) /. 1e6 in
  (* catch-up: wall-clock from the last acknowledgement to position
     parity with the primary's durable WAL end *)
  let t1 = Metrics.now_ns () in
  let deadline = t1 + 60_000_000_000 in
  while
    Repl.replica_position rep <> Some (Engine.repl_position pdb)
    && Metrics.now_ns () < deadline
  do
    Thread.delay 0.001
  done;
  let caught_up =
    Repl.replica_position rep = Some (Engine.repl_position pdb)
  in
  let catchup_ms = float_of_int (Metrics.now_ns () - t1) /. 1e6 in
  let rs = Repl_stats.snapshot (Repl.replica_stats rep) in
  let lags = Array.of_list !lag_samples in
  Array.sort compare lags;
  let pct p =
    if Array.length lags = 0 then 0
    else
      lags.(Int.min
              (Array.length lags - 1)
              (int_of_float (p *. float_of_int (Array.length lags))))
  in
  let lag_max = if Array.length lags = 0 then 0 else lags.(Array.length lags - 1)
  in
  let applied_per_sec =
    float_of_int rs.Repl_stats.units_applied
    /. (float_of_int (Metrics.now_ns () - t0) /. 1e9)
  in
  Format.printf
    "ingest: %d acked rows in %.0f ms; lag p50 %d B p90 %d B max %d B; \
     catch-up %.1f ms%s; %.0f units/s applied@."
    n ingest_ms (pct 0.5) (pct 0.9) lag_max catchup_ms
    (if caught_up then "" else " (NOT CONVERGED)")
    applied_per_sec;
  record ~section:"replication" ~query:"steady-state"
    [
      ("rows", Json.Int n);
      ("ingest_ms", Json.Float ingest_ms);
      ("lag_p50_bytes", Json.Int (pct 0.5));
      ("lag_p90_bytes", Json.Int (pct 0.9));
      ("lag_max_bytes", Json.Int lag_max);
      ("catchup_ms", Json.Float catchup_ms);
      ("converged", Json.Bool caught_up);
      ("applied_units_per_sec", Json.Float applied_per_sec);
      ("snapshots_installed", Json.Int rs.Repl_stats.snapshots_installed);
      ("reconnects", Json.Int rs.Repl_stats.reconnects);
      ("torn_detected", Json.Int rs.Repl_stats.torn_detected);
    ];
  (* failover: kill the primary for good, promote the replica, count
     the acknowledged rows that survived *)
  Server.stop srv;
  Engine.close pdb;
  Repl.promote rep;
  let survivors =
    match Engine.exec rdb "select a from ingest" with
    | Engine.Rows r -> Relation.cardinality r
    | _ -> -1
  in
  let lost = n - survivors in
  exec_ok rdb "insert into ingest values (0, 'post-failover')";
  Format.printf
    "failover: %d/%d acked rows on the promoted replica (%d lost); \
     post-promote write ok@."
    survivors n lost;
  record ~section:"replication" ~query:"failover"
    [
      ("acked_rows", Json.Int n);
      ("replicated_rows", Json.Int survivors);
      ("lost_rows", Json.Int lost);
    ];
  Engine.close rdb

(* ---------- driver ---------- *)

let all_sections =
  [
    "figure8"; "table1"; "partitioning"; "parallel"; "clientsim";
    "pipeline"; "ablation"; "analyze"; "throughput"; "transactions";
    "governor"; "durability"; "vectorized"; "server"; "replication";
    "micro";
  ]

let run_section ~msf ~repeat = function
  | "figure8" -> bench_figure8 ~msf ~repeat ()
  | "table1" -> bench_table1 ~msf ~repeat ()
  | "partitioning" -> bench_partitioning ~msf ~repeat ()
  | "parallel" -> bench_parallel ~msf ~repeat ()
  | "clientsim" -> bench_clientsim ~msf ~repeat ()
  | "pipeline" -> bench_pipeline ~msf ~repeat ()
  | "ablation" -> bench_ablation ~msf ~repeat ()
  | "analyze" -> bench_analyze ~msf ~repeat ()
  | "throughput" -> bench_throughput ~msf ~repeat ()
  | "transactions" -> bench_transactions ~msf ~repeat ()
  | "governor" -> bench_governor ~msf ~repeat ()
  | "durability" -> bench_durability ~msf ~repeat ()
  | "vectorized" -> bench_vectorized ~msf ~repeat ()
  | "server" -> bench_server ~msf ~repeat ()
  | "replication" -> bench_replication ~msf ~repeat ()
  | "micro" -> bench_micro ()
  | other ->
      Format.eprintf "unknown section %s (known: %s)@." other
        (String.concat ", " all_sections);
      exit 2

let () =
  let msf = ref default_msf in
  let repeat = ref default_repeat in
  let json_path = ref None in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--msf" :: v :: rest ->
        msf := float_of_string v;
        parse rest
    | "--repeat" :: v :: rest ->
        repeat := int_of_string v;
        parse rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse rest
    | section :: rest ->
        sections := section :: !sections;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sections =
    match List.rev !sections with [] -> all_sections | s -> s
  in
  Format.printf
    "GApply reproduction benchmarks — msf %g, %d repetition(s), median \
     reported@."
    !msf !repeat;
  List.iter (run_section ~msf:!msf ~repeat:!repeat) sections;
  match !json_path with
  | Some path -> write_json ~msf:!msf ~repeat:!repeat path
  | None -> ()

(* Tests for every transformation rule: firing conditions, non-firing
   conditions, and semantic preservation (the rewritten plan must produce
   the same multiset as the original under both the reference evaluator
   and the physical executor). *)

open Support
open Expr

let cat = lazy (mini_catalog ())

let partsupp_part cat =
  Plan.join
    (column "ps_partkey" ==^ column "p_partkey")
    (scan cat "partsupp") (scan cat "part")

let gapply ~gcols ~var ~outer ~pgq_of =
  let oschema = Props.schema_of outer in
  Plan.g_apply ~gcols ~var ~outer
    ~pgq:(pgq_of (Plan.group_scan ~var oschema))

(** Force-fire [rule] on [plan]; check it fired and preserved semantics;
    return the rewritten plan. *)
let fire_checked ?(msg = "") rule cat plan =
  match Optimizer.force_rule rule cat plan with
  | None -> Alcotest.failf "rule %s did not fire %s" rule msg
  | Some plan' ->
      let before = Reference.run cat plan in
      let after = run_checked ~msg:(rule ^ " rewrite") cat plan' in
      check_rel (rule ^ " preserves semantics " ^ msg) before after;
      plan'

let assert_no_fire rule cat plan =
  match Optimizer.force_rule rule cat plan with
  | None -> ()
  | Some _ -> Alcotest.failf "rule %s fired but should not have" rule

(* ---------- R1: sigma over GApply ---------- *)

let avg_gapply cat =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.project
        [ (column "p_name", "p_name"); (column "a", "avg_price") ]
        (Plan.apply g
           (Plan.aggregate [ (avg (column "p_retailprice"), "a") ] g)))

let test_sigma_over_gapply_inner () =
  let cat = Lazy.force cat in
  let plan =
    Plan.select (column "avg_price" >^ float 25.) (avg_gapply cat)
  in
  let plan' = fire_checked "sigma-over-gapply" cat plan in
  (match plan' with
  | Plan.G_apply { pgq = Plan.Select _; _ } -> ()
  | _ -> Alcotest.fail "selection was not pushed into the PGQ");
  (* result: only supplier 2 (avg 30) survives, with its 2 parts *)
  Alcotest.(check int) "rows" 2 (Relation.cardinality (Reference.run cat plan'))

let test_sigma_over_gapply_group_key () =
  let cat = Lazy.force cat in
  let plan = Plan.select (column "ps_suppkey" ==^ int 1) (avg_gapply cat) in
  let plan' = fire_checked "sigma-over-gapply" cat plan in
  match plan' with
  | Plan.G_apply { outer = Plan.Select _; _ } -> ()
  | _ -> Alcotest.fail "group-key selection was not pushed to the outer input"

let test_sigma_over_gapply_mixed_stays () =
  let cat = Lazy.force cat in
  (* a conjunct mixing key and pgq columns cannot move *)
  let plan =
    Plan.select
      (column "ps_suppkey" ==^ column "avg_price")
      (avg_gapply cat)
  in
  assert_no_fire "sigma-over-gapply" cat plan

(* ---------- R2: pi over GApply ---------- *)

let test_pi_over_gapply () =
  let cat = Lazy.force cat in
  let plan =
    Plan.project
      [ (column "ps_suppkey", "k"); (column "avg_price", "avg_price") ]
      (avg_gapply cat)
  in
  let plan' = fire_checked "pi-over-gapply" cat plan in
  (match plan' with
  | Plan.Project { input = Plan.G_apply { pgq = Plan.Project { items; _ }; _ }; _ }
    ->
      Alcotest.(check int) "pgq narrowed to one column" 1 (List.length items)
  | _ -> Alcotest.fail "unexpected shape");
  assert_no_fire "pi-over-gapply" cat plan'

(* ---------- R3: projection before GApply ---------- *)

let q2_style_gapply cat =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.aggregate [ (count_star, "n") ]
        (Plan.select
           (column "p_retailprice" >=^ column "avgp")
           (Plan.apply g
              (Plan.aggregate [ (avg (column "p_retailprice"), "avgp") ] g))))

let test_projection_before_gapply () =
  let cat = Lazy.force cat in
  let plan = q2_style_gapply cat in
  let plan' = fire_checked "projection-before-gapply" cat plan in
  (match plan' with
  | Plan.G_apply { outer = Plan.Project { items; _ }; _ } ->
      Alcotest.(check int)
        "outer narrowed to key + price" 2 (List.length items)
  | _ -> Alcotest.fail "outer was not projected");
  assert_no_fire "projection-before-gapply" cat plan'

let test_projection_not_fired_when_all_needed () =
  let cat = Lazy.force cat in
  (* identity PGQ passes the whole row through: nothing to cut *)
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(scan cat "partsupp")
      ~pgq_of:(fun g -> g)
  in
  assert_no_fire "projection-before-gapply" cat plan

(* ---------- R4: selection before GApply ---------- *)

let brand_a = column "p_brand" ==^ str "Brand#A"
let brand_b = column "p_brand" ==^ str "Brand#B"

(* Figure 3: parts of brand A priced above the brand-B average. *)
let figure3_gapply cat =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.project
        [ (column "p_name", "p_name") ]
        (Plan.select
           (column "p_retailprice" >=^ column "avgb")
           (Plan.apply
              (Plan.select brand_a g)
              (Plan.aggregate
                 [ (avg (column "p_retailprice"), "avgb") ]
                 (Plan.select brand_b g)))))

let test_selection_before_gapply () =
  let cat = Lazy.force cat in
  let plan = figure3_gapply cat in
  let plan' = fire_checked "selection-before-gapply" cat plan in
  (match plan' with
  | Plan.G_apply { outer = Plan.Select { pred; _ }; _ } ->
      Alcotest.(check bool) "pushed disjunction" true
        (Expr.equal pred (brand_a ||| brand_b))
  | _ -> Alcotest.fail "covering range was not pushed");
  (* the guard must prevent re-firing *)
  assert_no_fire "selection-before-gapply" cat plan'

let test_selection_blocked_without_empty_on_empty () =
  let cat = Lazy.force cat in
  (* count-star PGQ returns a row even for emptied groups: must not fire *)
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.aggregate [ (count_star, "n") ] (Plan.select brand_a g))
  in
  assert_no_fire "selection-before-gapply" cat plan

let test_selection_emptyonempty_semantics_matter () =
  let cat = Lazy.force cat in
  (* same query but with a select PGQ (emptyOnEmpty holds): fires, and
     the results differ from the count-star variant precisely on groups
     that become empty — this pins down why the side condition exists *)
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.project [ (column "p_name", "p_name") ] (Plan.select brand_a g))
  in
  ignore (fire_checked "selection-before-gapply" cat plan)

(* ---------- R5: GApply to groupby ---------- *)

let test_gapply_to_groupby_aggregate () =
  let cat = Lazy.force cat in
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.aggregate
          [ (avg (column "p_retailprice"), "a"); (count_star, "n") ]
          g)
  in
  let plan' = fire_checked "gapply-to-groupby" cat plan in
  (match plan' with
  | Plan.Group_by { keys; _ } ->
      Alcotest.(check int) "single key" 1 (List.length keys)
  | _ -> Alcotest.fail "expected a groupby");
  Alcotest.(check bool) "no gapply left" false (Plan.contains_gapply plan')

let test_gapply_to_groupby_nested_keys () =
  let cat = Lazy.force cat in
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.group_by
          [ Expr.col "p_size" ]
          [ (avg (column "p_retailprice"), "a") ]
          g)
  in
  let plan' = fire_checked "gapply-to-groupby" cat plan in
  match plan' with
  | Plan.Group_by { keys; _ } ->
      Alcotest.(check int) "combined keys" 2 (List.length keys)
  | _ -> Alcotest.fail "expected a groupby"

let test_gapply_to_groupby_requires_plain_shape () =
  let cat = Lazy.force cat in
  (* a union PGQ is not a plain aggregation *)
  assert_no_fire "gapply-to-groupby" cat (figure3_gapply cat)

(* ---------- R6: group selection (exists) ---------- *)

let exists_gapply cat threshold =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.apply g
        (Plan.exists
           (Plan.select (column "p_retailprice" >^ float threshold) g)))

let test_group_selection_exists () =
  let cat = Lazy.force cat in
  let plan = exists_gapply cat 35. in
  let plan' = fire_checked "group-selection-exists" cat plan in
  Alcotest.(check bool) "gapply eliminated" false
    (Plan.contains_gapply plan');
  (* only supplier 2 has a part above 35; its whole group (2 rows) *)
  Alcotest.(check int) "2 rows" 2
    (Relation.cardinality (Reference.run cat plan'))

let test_group_selection_exists_nonselective () =
  let cat = Lazy.force cat in
  (* threshold 0: every group qualifies — still semantics-preserving *)
  ignore (fire_checked "group-selection-exists" cat (exists_gapply cat 0.))

let test_group_selection_exists_requires_shape () =
  let cat = Lazy.force cat in
  assert_no_fire "group-selection-exists" cat (figure3_gapply cat)

(* ---------- R7: group selection (aggregate) ---------- *)

let agg_sel_gapply cat threshold =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.select
        (column "avgp" >^ float threshold)
        (Plan.apply g
           (Plan.aggregate [ (avg (column "p_retailprice"), "avgp") ] g)))

let test_group_selection_aggregate () =
  let cat = Lazy.force cat in
  let plan = agg_sel_gapply cat 22. in
  let plan' = fire_checked "group-selection-aggregate" cat plan in
  Alcotest.(check bool) "gapply eliminated" false
    (Plan.contains_gapply plan');
  (* supplier 2 (avg 30) qualifies: 2 rows *)
  Alcotest.(check int) "2 rows" 2
    (Relation.cardinality (Reference.run cat plan'))

let test_group_selection_aggregate_with_projection () =
  let cat = Lazy.force cat in
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.project
          [ (column "p_name", "p_name") ]
          (Plan.select
             (column "avgp" >^ float 22.)
             (Plan.apply g
                (Plan.aggregate [ (avg (column "p_retailprice"), "avgp") ] g))))
  in
  ignore (fire_checked "group-selection-aggregate" cat plan)

(* ---------- R8: invariant grouping ---------- *)

(* Figure 7: for each supplier, the supplier name and its least expensive
   part; grouping and evaluation need only ps_suppkey + prices, so the
   GApply moves below the supplier join. *)
let figure7_plan cat =
  let left = partsupp_part cat in
  let join =
    Plan.join ~fk:Plan.Left_to_right
      (column "ps_suppkey" ==^ column "s_suppkey")
      left (scan cat "supplier")
  in
  let oschema = Props.schema_of join in
  Plan.g_apply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"g" ~outer:join
    ~pgq:
      (let g = Plan.group_scan ~var:"g" oschema in
       Plan.project
         [
           (column "s_name", "s_name");
           (column "p_name", "p_name");
           (column "p_retailprice", "p_retailprice");
         ]
         (Plan.select
            (column "p_retailprice" ==^ column "minp")
            (Plan.apply g
               (Plan.aggregate
                  [ (min_ (column "p_retailprice"), "minp") ]
                  g))))

let test_invariant_grouping () =
  let cat = Lazy.force cat in
  let plan = figure7_plan cat in
  let plan' = fire_checked "invariant-grouping" cat plan in
  (* the GApply must now sit below the supplier join *)
  (match plan' with
  | Plan.Project
      { input = Plan.Join { left = Plan.G_apply _; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "GApply was not pushed below the join");
  Alcotest.(check int) "one cheapest part per supplier" 2
    (Relation.cardinality (Reference.run cat plan'))

let test_invariant_grouping_requires_fk () =
  let cat = Lazy.force cat in
  (* same plan but without the FK annotation: must not fire *)
  let left = partsupp_part cat in
  let join =
    Plan.join
      (column "ps_suppkey" ==^ column "s_suppkey")
      left (scan cat "supplier")
  in
  let oschema = Props.schema_of join in
  let plan =
    Plan.g_apply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g" ~outer:join
      ~pgq:
        (Plan.project
           [ (column "s_name", "s_name") ]
           (Plan.group_scan ~var:"g" oschema))
  in
  assert_no_fire "invariant-grouping" cat plan

let test_invariant_grouping_requires_gcols_left () =
  let cat = Lazy.force cat in
  (* grouping on a right-side column: must not fire *)
  let join =
    Plan.join ~fk:Plan.Left_to_right
      (column "ps_suppkey" ==^ column "s_suppkey")
      (scan cat "partsupp") (scan cat "supplier")
  in
  let oschema = Props.schema_of join in
  let plan =
    Plan.g_apply
      ~gcols:[ Expr.col "s_name" ]
      ~var:"g" ~outer:join
      ~pgq:
        (Plan.aggregate [ (count_star, "n") ]
           (Plan.group_scan ~var:"g" oschema))
  in
  assert_no_fire "invariant-grouping" cat plan

(* ---------- R9: pull GApply above a join ---------- *)

let test_pull_above_join () =
  let cat = Lazy.force cat in
  let ga =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(scan cat "partsupp")
      ~pgq_of:(fun g -> Plan.aggregate [ (count_star, "n") ] g)
  in
  let plan =
    Plan.join ~fk:Plan.Left_to_right
      (column "ps_suppkey" ==^ column "s_suppkey")
      ga (scan cat "supplier")
  in
  let plan' = fire_checked "pull-gapply-above-join" cat plan in
  match plan' with
  | Plan.G_apply { outer = Plan.Join _; _ } -> ()
  | _ -> Alcotest.fail "GApply was not pulled above the join"

(* ---------- driver ---------- *)

let test_optimize_converts_aggregate_gapply () =
  let cat = Lazy.force cat in
  let plan =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.aggregate [ (avg (column "p_retailprice"), "a") ] g)
  in
  let { Optimizer.plan = plan'; trace } = Optimizer.optimize cat plan in
  Alcotest.(check bool) "gapply eliminated by driver" false
    (Plan.contains_gapply plan');
  Alcotest.(check bool) "trace non-empty" true (trace <> []);
  check_rel "driver preserves semantics" (Reference.run cat plan)
    (Reference.run cat plan')

let test_optimize_preserves_q_semantics () =
  let cat = Lazy.force cat in
  List.iter
    (fun plan ->
      let { Optimizer.plan = plan'; _ } = Optimizer.optimize cat plan in
      check_rel "optimize preserves semantics" (Reference.run cat plan)
        (run_checked cat plan'))
    [
      figure3_gapply cat;
      q2_style_gapply cat;
      exists_gapply cat 35.;
      agg_sel_gapply cat 22.;
      figure7_plan cat;
      avg_gapply cat;
    ]

let test_optimize_terminates_and_is_idempotent () =
  let cat = Lazy.force cat in
  let plan = figure3_gapply cat in
  let r1 = Optimizer.optimize cat plan in
  let r2 = Optimizer.optimize cat r1.Optimizer.plan in
  Alcotest.(check bool) "fixpoint reached" true
    (Plan.equal r1.Optimizer.plan r2.Optimizer.plan)

let suite =
  [
    Alcotest.test_case "R1 pushes pgq-column selection" `Quick
      test_sigma_over_gapply_inner;
    Alcotest.test_case "R1 pushes group-key selection outward" `Quick
      test_sigma_over_gapply_group_key;
    Alcotest.test_case "R1 leaves mixed predicates" `Quick
      test_sigma_over_gapply_mixed_stays;
    Alcotest.test_case "R2 narrows the pgq" `Quick test_pi_over_gapply;
    Alcotest.test_case "R3 projects the outer input" `Quick
      test_projection_before_gapply;
    Alcotest.test_case "R3 skips identity pgq" `Quick
      test_projection_not_fired_when_all_needed;
    Alcotest.test_case "R4 pushes the covering range" `Quick
      test_selection_before_gapply;
    Alcotest.test_case "R4 requires emptyOnEmpty" `Quick
      test_selection_blocked_without_empty_on_empty;
    Alcotest.test_case "R4 fires on emptyOnEmpty pgq" `Quick
      test_selection_emptyonempty_semantics_matter;
    Alcotest.test_case "R5 aggregate form" `Quick
      test_gapply_to_groupby_aggregate;
    Alcotest.test_case "R5 nested groupby form" `Quick
      test_gapply_to_groupby_nested_keys;
    Alcotest.test_case "R5 requires plain shape" `Quick
      test_gapply_to_groupby_requires_plain_shape;
    Alcotest.test_case "R6 exists rewrite" `Quick test_group_selection_exists;
    Alcotest.test_case "R6 non-selective still correct" `Quick
      test_group_selection_exists_nonselective;
    Alcotest.test_case "R6 requires its shape" `Quick
      test_group_selection_exists_requires_shape;
    Alcotest.test_case "R7 aggregate-predicate rewrite" `Quick
      test_group_selection_aggregate;
    Alcotest.test_case "R7 with projection" `Quick
      test_group_selection_aggregate_with_projection;
    Alcotest.test_case "R8 invariant grouping (figure 7)" `Quick
      test_invariant_grouping;
    Alcotest.test_case "R8 requires FK join" `Quick
      test_invariant_grouping_requires_fk;
    Alcotest.test_case "R8 requires left grouping columns" `Quick
      test_invariant_grouping_requires_gcols_left;
    Alcotest.test_case "R9 pull above join" `Quick test_pull_above_join;
    Alcotest.test_case "driver converts plain aggregations" `Quick
      test_optimize_converts_aggregate_gapply;
    Alcotest.test_case "driver preserves semantics on all fixtures" `Quick
      test_optimize_preserves_q_semantics;
    Alcotest.test_case "driver reaches a fixpoint" `Quick
      test_optimize_terminates_and_is_idempotent;
  ]

(* Property tests for the engine extensions: index nested-loop joins,
   scalar-aggregate decorrelation, and null-safe equality. *)

open Support

module Gen = QCheck2.Gen

let gen_value_int =
  Gen.frequency
    [
      (8, Gen.map (fun i -> Value.Int i) (Gen.int_range (-4) 4));
      (1, Gen.return Value.Null);
    ]

let gen_value_float =
  Gen.frequency
    [
      (8, Gen.map (fun i -> Value.Float (float_of_int i /. 2.)) (Gen.int_range (-6) 6));
      (1, Gen.return Value.Null);
    ]

let t1_schema = schema [ ("a", Datatype.Int); ("c", Datatype.Float) ]
let t2_schema = schema [ ("k", Datatype.Int); ("v", Datatype.Float) ]

let gen_rows schema gens =
  Gen.list_size (Gen.int_range 0 12)
    (Gen.map Tuple.of_list (Gen.flatten_l gens))
  |> Gen.map (Relation.make schema)

let gen_t1 = gen_rows t1_schema [ gen_value_int; gen_value_float ]
let gen_t2 = gen_rows t2_schema [ gen_value_int; gen_value_float ]

let catalog_with rel1 rel2 =
  let cat = Catalog.create () in
  let t1 = Table.create "t1" [ ("a", Datatype.Int); ("c", Datatype.Float) ] in
  Relation.iter (Table.insert t1) rel1;
  let t2 = Table.create "t2" [ ("k", Datatype.Int); ("v", Datatype.Float) ] in
  Relation.iter (Table.insert t2) rel2;
  Catalog.add_table cat t1;
  Catalog.add_table cat t2;
  cat

let prop_index_join_equals_hash_join =
  QCheck2.Test.make ~count:300
    ~name:"index nested-loop join = hash join = reference"
    (Gen.pair gen_t1 gen_t2)
    (fun (r1, r2) ->
      let cat = catalog_with r1 r2 in
      Catalog.create_index cat ~name:"i" ~table:"t2" ~columns:[ "k" ];
      let p =
        Plan.join
          Expr.(column "a" ==^ column "k")
          (Plan.table_scan ~table:"t1" ~alias:"t1" t1_schema)
          (Plan.table_scan ~table:"t2" ~alias:"t2" t2_schema)
      in
      let reference = Reference.run cat p in
      let indexed =
        Executor.run ~config:(Compile.config_with ~use_indexes:true ()) cat p
      in
      let hashed =
        Executor.run ~config:(Compile.config_with ~use_indexes:false ()) cat p
      in
      Relation.equal_as_multiset reference indexed
      && Relation.equal_as_multiset reference hashed)

let prop_nullsafe_join_matches_reference =
  QCheck2.Test.make ~count:300
    ~name:"null-safe equi-join = reference (NULL keys match)"
    (Gen.pair gen_t1 gen_t2)
    (fun (r1, r2) ->
      let cat = catalog_with r1 r2 in
      let p =
        Plan.join
          (Expr.Binary (Expr.Nulleq, Expr.column "a", Expr.column "k"))
          (Plan.table_scan ~table:"t1" ~alias:"t1" t1_schema)
          (Plan.table_scan ~table:"t2" ~alias:"t2" t2_schema)
      in
      Relation.equal_as_multiset (Reference.run cat p)
        (Executor.run cat p))

let prop_nulleq_semantics =
  QCheck2.Test.make ~count:500
    ~name:"a <=> b evaluates to equal_total"
    (Gen.pair gen_value_int gen_value_float)
    (fun (a, b) ->
      let s = schema [ ("x", Datatype.Int); ("y", Datatype.Float) ] in
      let result =
        Eval.eval ~frames:[] s (row [ a; b ])
          (Expr.Binary (Expr.Nulleq, Expr.column "x", Expr.column "y"))
      in
      Value.equal_total result (Value.Bool (Value.equal_total a b))
      && not (Value.is_null result))

let prop_decorrelation_preserves =
  QCheck2.Test.make ~count:200
    ~name:"decorrelate-scalar-agg preserves results on random data"
    (Gen.triple gen_t1 gen_t2 (Gen.int_range (-3) 3))
    (fun (r1, r2, bound) ->
      let cat = catalog_with r1 r2 in
      (* for each t1 row: c > avg(v) over t2 rows with k = a *)
      let outer = Plan.table_scan ~table:"t1" ~alias:"t1" t1_schema in
      let inner_scan = Plan.table_scan ~table:"t2" ~alias:"t2" t2_schema in
      let plan =
        Plan.select
          Expr.(
            column "c" >^ column "sq"
            &&& (column "sq" >^ float (float_of_int bound)))
          (Plan.apply outer
             (Plan.aggregate
                [ (Expr.avg (Expr.column "v"), "sq") ]
                (Plan.select
                   (Expr.Binary (Expr.Eq, Expr.outer "a", Expr.column "k"))
                   inner_scan)))
      in
      match Optimizer.force_rule "decorrelate-scalar-agg" cat plan with
      | None -> false (* must fire on this canonical shape *)
      | Some plan' ->
          Relation.equal_as_multiset (Reference.run cat plan)
            (Executor.run cat plan'))

let prop_plan_rewrite_exprs_identity =
  QCheck2.Test.make ~count:200
    ~name:"rewrite_exprs with identity leaves plans unchanged"
    (Gen.pair Test_properties.gen_gcols Test_properties.gen_pgq)
    (fun (gcols, pgq) ->
      let plan =
        Plan.g_apply ~gcols ~var:"g"
          ~outer:(Plan.group_scan ~var:"g" Test_properties.g_schema)
          ~pgq
      in
      Plan.equal plan
        (Plan.rewrite_exprs ~f_expr:(fun e -> e) ~f_ref:(fun r -> r) plan))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_index_join_equals_hash_join;
      prop_nullsafe_join_matches_reference;
      prop_nulleq_semantics;
      prop_decorrelation_preserves;
      prop_plan_rewrite_exprs_identity;
    ]

(* Unit tests: values, datatypes, three-valued logic. *)

open Support

let check_v = Alcotest.check value_testable
let check_t = Alcotest.check truth_testable

let test_compare_total_numeric () =
  Alcotest.(check int) "int vs float equal" 0
    (Value.compare_total (vi 3) (vf 3.));
  Alcotest.(check bool) "int < float" true
    (Value.compare_total (vi 3) (vf 3.5) < 0);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare_total vnull (vi (-1000)) < 0)

let test_hash_consistent_with_equality () =
  Alcotest.(check int) "hash int = hash float when equal"
    (Value.hash (vi 7)) (Value.hash (vf 7.));
  Alcotest.(check bool) "equal_total 7 = 7.0" true
    (Value.equal_total (vi 7) (vf 7.))

let test_sql_compare_null () =
  Alcotest.(check bool) "null = 1 is unknown" true
    (Value.sql_compare vnull (vi 1) = None);
  check_t "eq null" Truth.Unknown (Value.eq vnull (vi 1));
  check_t "lt null" Truth.Unknown (Value.lt (vi 1) vnull)

let test_sql_compare_values () =
  check_t "3 < 4" Truth.True (Value.lt (vi 3) (vi 4));
  check_t "3 >= 4" Truth.False (Value.gte (vi 3) (vi 4));
  check_t "3 = 3.0" Truth.True (Value.eq (vi 3) (vf 3.));
  check_t "'a' < 'b'" Truth.True (Value.lt (vs "a") (vs "b"))

let test_incomparable_types_raise () =
  Alcotest.check_raises "int vs string"
    (Errors.Type_error "cannot compare 1 with a") (fun () ->
      ignore (Value.eq (vi 1) (vs "a")))

let test_arithmetic () =
  check_v "int add" (vi 7) (Value.add (vi 3) (vi 4));
  check_v "mixed add" (vf 7.5) (Value.add (vi 3) (vf 4.5));
  check_v "null propagates" vnull (Value.add vnull (vi 4));
  check_v "int div truncates" (vi 2) (Value.div (vi 7) (vi 3));
  check_v "float div" (vf 3.5) (Value.div (vf 7.) (vi 2));
  check_v "div by zero is null" vnull (Value.div (vi 7) (vi 0));
  check_v "float div by zero is null" vnull (Value.div (vf 7.) (vf 0.));
  check_v "neg" (vi (-3)) (Value.neg (vi 3))

let test_truth_tables () =
  let u = Truth.Unknown and t = Truth.True and f = Truth.False in
  check_t "t and u" u (Truth.and_ t u);
  check_t "f and u" f (Truth.and_ f u);
  check_t "u and u" u (Truth.and_ u u);
  check_t "t or u" t (Truth.or_ t u);
  check_t "f or u" u (Truth.or_ f u);
  check_t "not u" u (Truth.not_ u);
  Alcotest.(check bool) "unknown rejected by where" false (Truth.to_bool u)

let test_literal_rendering () =
  Alcotest.(check string) "string quoted" "'it''s'"
    (Value.to_literal (vs "it's"));
  Alcotest.(check string) "float keeps point" "3.0" (Value.to_string (vf 3.));
  Alcotest.(check string) "null" "NULL" (Value.to_string vnull)

let test_datatype_unify () =
  Alcotest.(check bool) "null unifies" true
    (Datatype.unify Datatype.Null Datatype.Float = Some Datatype.Float);
  Alcotest.(check bool) "int/float unify to float" true
    (Datatype.unify Datatype.Int Datatype.Float = Some Datatype.Float);
  Alcotest.(check bool) "str/int do not unify" true
    (Datatype.unify Datatype.Str Datatype.Int = None)

let suite =
  [
    Alcotest.test_case "compare_total numeric coercion" `Quick
      test_compare_total_numeric;
    Alcotest.test_case "hash consistent with equal_total" `Quick
      test_hash_consistent_with_equality;
    Alcotest.test_case "sql_compare with nulls" `Quick test_sql_compare_null;
    Alcotest.test_case "sql_compare values" `Quick test_sql_compare_values;
    Alcotest.test_case "incomparable types raise" `Quick
      test_incomparable_types_raise;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "3VL truth tables" `Quick test_truth_tables;
    Alcotest.test_case "literal rendering" `Quick test_literal_rendering;
    Alcotest.test_case "datatype unification" `Quick test_datatype_unify;
  ]

test/test_exec.ml: Alcotest Catalog Datatype Executor Expr Lazy List Plan Props Relation Schema Support Table Tuple

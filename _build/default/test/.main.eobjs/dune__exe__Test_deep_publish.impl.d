test/test_deep_publish.ml: Alcotest Catalog Compile Deep_publish Deep_view Env Errors Executor Lazy List Plan Relation Sql_binder Sql_parser String Table Tpch_gen Tuple Value Xml

test/test_xmlpub.ml: Alcotest Buffer Compile Env Errors Flwr Lazy List Plan Publish String Support Tagger Tpch_gen Xml Xml_view

test/main.mli:

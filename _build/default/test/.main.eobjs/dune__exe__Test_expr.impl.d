test/test_expr.ml: Agg_state Alcotest Datatype Errors Eval Expr Infer List Support

test/test_properties2.ml: Catalog Compile Datatype Eval Executor Expr List Optimizer Plan QCheck2 QCheck_alcotest Reference Relation Support Table Test_properties Tuple Value

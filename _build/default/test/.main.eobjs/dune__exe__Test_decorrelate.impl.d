test/test_decorrelate.ml: Alcotest Executor Lazy Optimizer Plan Reference Relation Sql_binder Sql_parser Support Tpch_gen Workloads

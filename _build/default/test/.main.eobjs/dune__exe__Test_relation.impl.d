test/test_relation.ml: Alcotest Catalog Datatype Errors Option Relation Schema Stats Support Table Tuple Value

test/test_sql.ml: Alcotest Catalog Errors List Optimizer Plan Reference Relation Schema Sql_ast Sql_binder Sql_lexer Sql_parser Sql_token Support Tuple Value

test/test_gapply.ml: Alcotest Compile Executor Expr Lazy List Plan Props Relation Schema Support Tuple Value

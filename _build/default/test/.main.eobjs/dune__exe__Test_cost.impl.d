test/test_cost.ml: Alcotest Cost Expr Lazy Optimizer Plan Props Sql_binder Sql_parser Support Tpch_gen Workloads

test/test_index.ml: Alcotest Catalog Compile Datatype Errors Executor Expr Index List Plan Relation Sql_binder Sql_parser Support Table

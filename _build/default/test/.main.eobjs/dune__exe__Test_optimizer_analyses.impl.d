test/test_optimizer_analyses.ml: Alcotest Covering_range Datatype Empty_on_empty Expr Format Gp_eval Plan Support

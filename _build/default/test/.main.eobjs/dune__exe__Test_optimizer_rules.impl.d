test/test_optimizer_rules.ml: Alcotest Expr Lazy List Optimizer Plan Props Reference Relation Support

test/test_value.ml: Alcotest Datatype Errors Support Truth Value

test/support.ml: Alcotest Catalog Compile Datatype Executor List Plan Reference Relation Schema Table Truth Tuple Value

test/test_engine.ml: Alcotest Catalog Client_sim Compile Engine Errors Executor Hashtbl Lazy List Optimizer Option Reference Relation String Support Table Tpch_gen Tuple Value Workloads

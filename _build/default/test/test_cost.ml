(* Cost model tests (paper Section 4.4): cardinality estimation,
   selectivities, and the GApply costing formula (per-group cost times
   the number of groups under the uniformity assumption). *)

open Support
open Expr

let cat = lazy (Tpch_gen.catalog ~msf:0.2 ())

let estimate plan =
  let cat = Lazy.force cat in
  Cost.estimate (Cost.make_ctx cat) plan

let test_scan_cardinality () =
  let cat = Lazy.force cat in
  let e = estimate (scan cat "partsupp") in
  Alcotest.(check (float 1.)) "partsupp card" 1600. e.Cost.card

let test_equality_selectivity () =
  let cat = Lazy.force cat in
  let e =
    estimate
      (Plan.select (column "ps_suppkey" ==^ int 1) (scan cat "partsupp"))
  in
  (* 20 suppliers at msf 0.2 -> 1/20th of 1600 *)
  Alcotest.(check bool) "eq selectivity around 80"
    true
    (e.Cost.card > 40. && e.Cost.card < 160.)

let test_range_selectivity_uses_stats () =
  let cat = Lazy.force cat in
  let low =
    estimate
      (Plan.select (column "p_retailprice" <^ float 950.) (scan cat "part"))
  in
  let high =
    estimate
      (Plan.select (column "p_retailprice" <^ float 2000.) (scan cat "part"))
  in
  Alcotest.(check bool) "wider range admits more rows" true
    (high.Cost.card > low.Cost.card)

let test_join_cardinality () =
  let cat = Lazy.force cat in
  let e =
    estimate
      (Plan.join
         (column "ps_partkey" ==^ column "p_partkey")
         (scan cat "partsupp") (scan cat "part"))
  in
  (* FK join: |partsupp| rows survive *)
  Alcotest.(check bool) "fk join card near |partsupp|" true
    (e.Cost.card > 800. && e.Cost.card < 3200.)

let test_gapply_costing () =
  let cat = Lazy.force cat in
  let outer =
    Plan.join
      (column "ps_partkey" ==^ column "p_partkey")
      (scan cat "partsupp") (scan cat "part")
  in
  let oschema = Props.schema_of outer in
  let mk gcols =
    Plan.g_apply ~gcols ~var:"g" ~outer
      ~pgq:
        (Plan.aggregate
           [ (avg (column "p_retailprice"), "a") ]
           (Plan.group_scan ~var:"g" oschema))
  in
  let by_supp = estimate (mk [ Expr.col "ps_suppkey" ]) in
  let by_supp_size =
    estimate (mk [ Expr.col "ps_suppkey"; Expr.col "p_size" ])
  in
  (* more grouping columns -> more groups -> more per-group invocations *)
  Alcotest.(check bool) "output card grows with group count" true
    (by_supp_size.Cost.card > by_supp.Cost.card);
  Alcotest.(check bool) "cost positive" true (by_supp.Cost.cost > 0.)

let test_cost_prefers_pushed_selection () =
  (* the Section 4.1 rewrite should look cheaper to the model, which is
     what lets the driver adopt it *)
  let cat = Lazy.force cat in
  let src =
    "select gapply(select p_name from g where p_retailprice < 950.0) from \
     partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g"
  in
  let plan = Sql_binder.bind_query cat (Sql_parser.parse_query_string src) in
  match Optimizer.force_rule "selection-before-gapply" cat plan with
  | None -> Alcotest.fail "rule did not fire"
  | Some plan' ->
      Alcotest.(check bool) "estimated cost drops" true
        (Cost.plan_cost cat plan' < Cost.plan_cost cat plan)

let test_group_selection_cost_tracks_selectivity () =
  let cat = Lazy.force cat in
  let q bound = Workloads.rule_exists_query ~price_bound:bound in
  let cost_of_rewrite bound =
    let plan =
      Sql_binder.bind_query cat (Sql_parser.parse_query_string (q bound))
    in
    match Optimizer.force_rule "group-selection-exists" cat plan with
    | None -> Alcotest.fail "rule did not fire"
    | Some plan' -> (Cost.plan_cost cat plan, Cost.plan_cost cat plan')
  in
  let _, selective = cost_of_rewrite 2095. in
  let _, unselective = cost_of_rewrite 905. in
  Alcotest.(check bool)
    "rewrite estimated cheaper when the predicate is selective" true
    (selective < unselective)

let test_selectivity_combinators () =
  let cat = Lazy.force cat in
  let ctx = Cost.make_ctx cat in
  let s_and =
    Cost.selectivity ctx
      ((column "ps_suppkey" ==^ int 1) &&& (column "ps_partkey" ==^ int 2))
  in
  let s_single = Cost.selectivity ctx (column "ps_suppkey" ==^ int 1) in
  Alcotest.(check bool) "AND multiplies" true (s_and < s_single);
  let s_or =
    Cost.selectivity ctx
      ((column "ps_suppkey" ==^ int 1) ||| (column "ps_suppkey" ==^ int 2))
  in
  Alcotest.(check bool) "OR adds" true (s_or > s_single);
  let s_not = Cost.selectivity ctx (not_ (column "ps_suppkey" ==^ int 1)) in
  Alcotest.(check (float 1e-9)) "NOT complements" (1. -. s_single) s_not;
  Alcotest.(check (float 1e-9)) "TRUE is 1" 1.
    (Cost.selectivity ctx (bool true))

let suite =
  [
    Alcotest.test_case "scan cardinality" `Quick test_scan_cardinality;
    Alcotest.test_case "equality selectivity" `Quick
      test_equality_selectivity;
    Alcotest.test_case "range selectivity from stats" `Quick
      test_range_selectivity_uses_stats;
    Alcotest.test_case "FK join cardinality" `Quick test_join_cardinality;
    Alcotest.test_case "gapply costing (4.4)" `Quick test_gapply_costing;
    Alcotest.test_case "pushed selection looks cheaper" `Quick
      test_cost_prefers_pushed_selection;
    Alcotest.test_case "group-selection cost tracks selectivity" `Quick
      test_group_selection_cost_tracks_selectivity;
    Alcotest.test_case "selectivity combinators" `Quick
      test_selectivity_combinators;
  ]

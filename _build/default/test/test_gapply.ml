(* Tests for the GApply operator itself: the paper's formal semantics
   (Section 3), both partitioning strategies, and the motivating queries
   Q1/Q2 built directly in the algebra. *)

open Support
open Expr

let cat = lazy (mini_catalog ())

let partsupp_part cat =
  Plan.join
    (column "ps_partkey" ==^ column "p_partkey")
    (scan cat "partsupp") (scan cat "part")

(** Build a GApply whose per-group query is derived from a fresh
    group-scan leaf of the right schema. *)
let gapply ~gcols ~var ~outer ~pgq_of =
  let oschema = Props.schema_of outer in
  Plan.g_apply ~gcols ~var ~outer
    ~pgq:(pgq_of (Plan.group_scan ~var oschema))

let test_identity_pgq () =
  let cat = Lazy.force cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(scan cat "partsupp")
      ~pgq_of:(fun g -> g)
  in
  let r = run_checked cat p in
  (* every partsupp row appears once, prefixed by its group key *)
  Alcotest.(check int) "5 rows" 5 (Relation.cardinality r);
  Alcotest.(check int) "arity = key + group columns" 3
    (Schema.arity (Relation.schema r))

let test_gapply_matches_formal_definition () =
  let cat = Lazy.force cat in
  (* compare physical GApply against a hand-evaluated instance of
     union over distinct keys of ({c} x PGQ(sigma_{C=c} input)) *)
  let outer = partsupp_part cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g" ~outer
      ~pgq_of:(fun g -> Plan.aggregate [ (min_ (column "p_retailprice"), "m") ] g)
  in
  let r = run_checked cat p in
  check_rows "min price per supplier"
    [ [ vi 1; vf 10. ]; [ vi 2; vf 20. ] ]
    r

let test_empty_group_never_materialises () =
  let cat = Lazy.force cat in
  (* supplier 3 supplies nothing: no group is formed for it, so even a
     count-star PGQ (which returns a row on the empty relation) produces
     nothing for supplier 3 *)
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(scan cat "partsupp")
      ~pgq_of:(fun g -> Plan.aggregate [ (count_star, "n") ] g)
  in
  let r = run_checked cat p in
  check_rows "only suppliers with parts" [ [ vi 1; vi 3 ]; [ vi 2; vi 2 ] ] r

let test_gapply_on_empty_outer () =
  let cat = Lazy.force cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(Plan.select (column "ps_suppkey" >^ int 100) (scan cat "partsupp"))
      ~pgq_of:(fun g -> Plan.aggregate [ (count_star, "n") ] g)
  in
  let r = run_checked cat p in
  Alcotest.(check int) "empty outer, empty result" 0 (Relation.cardinality r)

let test_multi_column_grouping () =
  let cat = Lazy.force cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey"; Expr.col "p_size" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g -> Plan.aggregate [ (count_star, "n") ] g)
  in
  let r = run_checked cat p in
  (* supplier 1: sizes 1 (bolt, gear), 2 (nut); supplier 2: size 2 twice *)
  check_rows "per (supplier, size) counts"
    [ [ vi 1; vi 1; vi 2 ]; [ vi 1; vi 2; vi 1 ]; [ vi 2; vi 2; vi 2 ] ]
    r

(* Paper query Q1: for each supplier, all part names/prices plus the
   average price, as a two-branch union in the PGQ. *)
let q1_plan cat =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"tmpsupp"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.union_all
        [
          Plan.project
            [
              (column "p_name", "p_name");
              (column "p_retailprice", "p_retailprice");
              (null, "avg_price");
            ]
            g;
          Plan.project
            [ (null, "p_name"); (null, "p_retailprice");
              (column "a", "avg_price") ]
            (Plan.aggregate [ (avg (column "p_retailprice"), "a") ] g);
        ])

let test_q1 () =
  let cat = Lazy.force cat in
  let r = run_checked cat (q1_plan cat) in
  check_rows "Q1 on mini data"
    [
      [ vi 1; vs "bolt"; vf 10.; vnull ];
      [ vi 1; vs "nut"; vf 20.; vnull ];
      [ vi 1; vs "gear"; vf 30.; vnull ];
      [ vi 1; vnull; vnull; vf 20. ];
      [ vi 2; vs "nut"; vf 20.; vnull ];
      [ vi 2; vs "cog"; vf 40.; vnull ];
      [ vi 2; vnull; vnull; vf 30. ];
    ]
    r

(* Paper query Q2: count parts above / below the per-supplier average. *)
let q2_branch g ~above =
  let avg_sub = Plan.aggregate [ (avg (column "p_retailprice"), "avg_p") ] g in
  let cmp =
    if above then column "p_retailprice" >=^ column "avg_p"
    else column "p_retailprice" <^ column "avg_p"
  in
  let counted =
    Plan.aggregate [ (count_star, "n") ] (Plan.select cmp (Plan.apply g avg_sub))
  in
  if above then
    Plan.project [ (column "n", "count_above"); (null, "count_below") ] counted
  else
    Plan.project [ (null, "count_above"); (column "n", "count_below") ] counted

let q2_plan cat =
  gapply
    ~gcols:[ Expr.col "ps_suppkey" ]
    ~var:"tmpsupp"
    ~outer:(partsupp_part cat)
    ~pgq_of:(fun g ->
      Plan.union_all [ q2_branch g ~above:true; q2_branch g ~above:false ])

let test_q2 () =
  let cat = Lazy.force cat in
  let r = run_checked cat (q2_plan cat) in
  check_rows "Q2 on mini data"
    [
      [ vi 1; vi 2; vnull ];
      [ vi 1; vnull; vi 1 ];
      [ vi 2; vi 1; vnull ];
      [ vi 2; vnull; vi 1 ];
    ]
    r

(* Q4-style: PGQ itself groups by another column. *)
let test_pgq_with_nested_group_by () =
  let cat = Lazy.force cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.group_by
          [ Expr.col "p_size" ]
          [ (avg (column "p_retailprice"), "avg_size_price") ]
          g)
  in
  let r = run_checked cat p in
  check_rows "per supplier per size average"
    [
      [ vi 1; vi 1; vf 20. ];
      [ vi 1; vi 2; vf 20. ];
      [ vi 2; vi 2; vf 30. ];
    ]
    r

let test_nested_gapply_in_pgq () =
  let cat = Lazy.force cat in
  (* inner gapply re-groups the group's rows by p_size *)
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"outer_g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        let gschema = Props.schema_of g in
        Plan.g_apply
          ~gcols:[ Expr.col "p_size" ]
          ~var:"inner_g" ~outer:g
          ~pgq:(Plan.aggregate
                  [ (max_ (column "p_retailprice"), "max_p") ]
                  (Plan.group_scan ~var:"inner_g" gschema)))
  in
  let r = run_checked cat p in
  check_rows "nested gapply"
    [
      [ vi 1; vi 1; vf 30. ];
      [ vi 1; vi 2; vf 20. ];
      [ vi 2; vi 2; vf 40. ];
    ]
    r

let test_pgq_orderby_inside_group () =
  let cat = Lazy.force cat in
  let p =
    gapply
      ~gcols:[ Expr.col "ps_suppkey" ]
      ~var:"g"
      ~outer:(partsupp_part cat)
      ~pgq_of:(fun g ->
        Plan.project
          [ (column "p_name", "p_name") ]
          (Plan.order_by [ (column "p_retailprice", Plan.Desc) ] g))
  in
  (* with sort partitioning the groups are clustered; check content *)
  let r = run_checked cat p in
  Alcotest.(check int) "5 rows" 5 (Relation.cardinality r)

let test_sort_partitioning_clusters_output () =
  let cat = Lazy.force cat in
  let p = q1_plan cat in
  let r =
    Executor.run ~config:(Compile.config_with ~partition:Compile.Sort_partition ()) cat p
  in
  (* group keys must be non-decreasing in the output stream *)
  let keys = List.map (fun t -> Tuple.get t 0) (Relation.rows r) in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) ->
        Value.compare_total a b <= 0 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "clustered by key" true (non_decreasing keys)

let suite =
  [
    Alcotest.test_case "identity per-group query" `Quick test_identity_pgq;
    Alcotest.test_case "matches formal definition" `Quick
      test_gapply_matches_formal_definition;
    Alcotest.test_case "no group for absent keys" `Quick
      test_empty_group_never_materialises;
    Alcotest.test_case "empty outer input" `Quick test_gapply_on_empty_outer;
    Alcotest.test_case "multi-column grouping" `Quick test_multi_column_grouping;
    Alcotest.test_case "paper query Q1" `Quick test_q1;
    Alcotest.test_case "paper query Q2" `Quick test_q2;
    Alcotest.test_case "nested group-by in PGQ" `Quick
      test_pgq_with_nested_group_by;
    Alcotest.test_case "nested GApply in PGQ" `Quick test_nested_gapply_in_pgq;
    Alcotest.test_case "order-by inside PGQ" `Quick
      test_pgq_orderby_inside_group;
    Alcotest.test_case "sort partitioning clusters output" `Quick
      test_sort_partitioning_clusters_output;
  ]

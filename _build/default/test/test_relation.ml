(* Unit tests: schemas, tuples, relations. *)

open Support

let s2 = schema [ ("a", Datatype.Int); ("b", Datatype.Str) ]

let test_schema_find () =
  Alcotest.(check int) "find b" 1 (Schema.find "b" s2);
  Alcotest.check_raises "unknown column"
    (Errors.Name_error "unknown column c") (fun () ->
      ignore (Schema.find "c" s2))

let test_schema_qualified () =
  let s =
    Schema.concat
      (Schema.rename_source "t1" s2)
      (Schema.rename_source "t2" s2)
  in
  Alcotest.(check int) "t2.a" 2 (Schema.find ~qual:"t2" "a" s);
  Alcotest.check_raises "bare a ambiguous"
    (Errors.Name_error "ambiguous column a") (fun () ->
      ignore (Schema.find "a" s))

let test_schema_project () =
  let p = Schema.project [ 1 ] s2 in
  Alcotest.(check int) "arity" 1 (Schema.arity p);
  Alcotest.(check string) "name" "b" (Schema.get p 0).Schema.cname

let test_tuple_ops () =
  let t = row [ vi 1; vs "x"; vnull ] in
  Alcotest.check tuple_testable "project reorders"
    (row [ vnull; vi 1 ])
    (Tuple.project [ 2; 0 ] t);
  Alcotest.(check bool) "tuples with nulls equal under total order" true
    (Tuple.equal (row [ vnull; vi 1 ]) (row [ vnull; vi 1 ]));
  Alcotest.(check bool) "compare lexicographic" true
    (Tuple.compare (row [ vi 1; vi 9 ]) (row [ vi 2; vi 0 ]) < 0)

let test_relation_distinct () =
  let r =
    rel
      [ ("a", Datatype.Int) ]
      [ [ vi 1 ]; [ vi 2 ]; [ vi 1 ]; [ vnull ]; [ vnull ] ]
  in
  let d = Relation.distinct r in
  Alcotest.(check int) "distinct count (nulls collapse)" 3
    (Relation.cardinality d)

let test_relation_multiset_equality () =
  let a = rel [ ("a", Datatype.Int) ] [ [ vi 1 ]; [ vi 2 ]; [ vi 1 ] ] in
  let b = rel [ ("a", Datatype.Int) ] [ [ vi 2 ]; [ vi 1 ]; [ vi 1 ] ] in
  let c = rel [ ("a", Datatype.Int) ] [ [ vi 2 ]; [ vi 2 ]; [ vi 1 ] ] in
  Alcotest.(check bool) "permutation equal" true
    (Relation.equal_as_multiset a b);
  Alcotest.(check bool) "different multiplicities differ" false
    (Relation.equal_as_multiset a c)

let test_relation_sort_stable () =
  let r =
    rel
      [ ("k", Datatype.Int); ("v", Datatype.Int) ]
      [ [ vi 1; vi 10 ]; [ vi 0; vi 20 ]; [ vi 1; vi 30 ] ]
  in
  let sorted =
    Relation.sort_by
      (fun a b -> Value.compare_total (Tuple.get a 0) (Tuple.get b 0))
      r
  in
  Alcotest.check relation_ordered_testable "stable order"
    (rel
       [ ("k", Datatype.Int); ("v", Datatype.Int) ]
       [ [ vi 0; vi 20 ]; [ vi 1; vi 10 ]; [ vi 1; vi 30 ] ])
    sorted

let test_table_insert_and_stats () =
  let cat = mini_catalog () in
  let stats = Catalog.stats_of cat "part" in
  Alcotest.(check int) "row count" 4 stats.Stats.row_count;
  Alcotest.(check int) "distinct prices" 4
    (Stats.distinct_count stats "p_retailprice");
  Alcotest.(check int) "distinct sizes" 2 (Stats.distinct_count stats "p_size");
  let c = Option.get (Stats.column_stats stats "p_retailprice") in
  Alcotest.check value_testable "min price" (vf 10.) c.Stats.min_value;
  Alcotest.check value_testable "max price" (vf 40.) c.Stats.max_value

let test_stats_invalidation () =
  let cat = mini_catalog () in
  ignore (Catalog.stats_of cat "supplier");
  let t = Catalog.find_table cat "supplier" in
  Table.insert t (row [ vi 4; vs "Umbrella" ]);
  Catalog.invalidate_stats cat "supplier";
  let stats = Catalog.stats_of cat "supplier" in
  Alcotest.(check int) "row count after insert" 4 stats.Stats.row_count

let test_table_arity_check () =
  let t = Table.create "t" [ ("a", Datatype.Int) ] in
  Alcotest.(check bool) "bad arity raises" true
    (try
       Table.insert t (row [ vi 1; vi 2 ]);
       false
     with Errors.Exec_error _ -> true)

let test_fk_metadata () =
  let cat = mini_catalog () in
  Alcotest.(check bool) "partsupp -> supplier fk" true
    (Catalog.has_foreign_key cat ~table:"partsupp" ~cols:[ "ps_suppkey" ]
       ~ref_table:"supplier" ~ref_cols:[ "s_suppkey" ]);
  Alcotest.(check bool) "no fk to part on suppkey" false
    (Catalog.has_foreign_key cat ~table:"partsupp" ~cols:[ "ps_suppkey" ]
       ~ref_table:"part" ~ref_cols:[ "p_partkey" ]);
  Alcotest.(check bool) "pk coverage" true
    (Catalog.covers_primary_key cat ~table:"supplier"
       ~cols:[ "s_suppkey"; "s_name" ])

let suite =
  [
    Alcotest.test_case "schema find" `Quick test_schema_find;
    Alcotest.test_case "schema qualified resolution" `Quick
      test_schema_qualified;
    Alcotest.test_case "schema project" `Quick test_schema_project;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
    Alcotest.test_case "relation distinct" `Quick test_relation_distinct;
    Alcotest.test_case "relation multiset equality" `Quick
      test_relation_multiset_equality;
    Alcotest.test_case "relation stable sort" `Quick test_relation_sort_stable;
    Alcotest.test_case "table stats" `Quick test_table_insert_and_stats;
    Alcotest.test_case "stats invalidation" `Quick test_stats_invalidation;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "foreign-key metadata" `Quick test_fk_metadata;
  ]

(* Property-based tests (qcheck, registered through qcheck-alcotest).

   The key invariants:
   - the physical executor agrees with the reference evaluator on random
     plans over random relations (both partitioning strategies);
   - GApply execution agrees with the paper's literal set-theoretic
     definition for random grouping columns and per-group queries;
   - Theorem 1: running a per-group query on the covering-range subset of
     a random group equals running it on the whole group;
   - the emptyOnEmpty analysis is sound: when it answers true, the
     per-group query really is empty on the empty group;
   - aggregate accumulators agree with naive recomputation;
   - the SQL printer/parser round-trips. *)

open Support

module Gen = QCheck2.Gen

(* ---------- random data ---------- *)

let g_schema =
  schema
    [
      ("a", Datatype.Int);
      ("b", Datatype.Int);
      ("c", Datatype.Float);
      ("d", Datatype.Str);
    ]

let gen_value_of_type ty : Value.t Gen.t =
  let open Gen in
  let base =
    match ty with
    | Datatype.Int -> map (fun i -> Value.Int i) (int_range (-5) 5)
    | Datatype.Float ->
        map (fun i -> Value.Float (float_of_int i /. 2.)) (int_range (-6) 6)
    | Datatype.Str ->
        map (fun c -> Value.Str (String.make 1 c)) (char_range 'a' 'e')
    | Datatype.Bool -> map (fun b -> Value.Bool b) bool
    | Datatype.Null -> return Value.Null
  in
  frequency [ (9, base); (1, return Value.Null) ]

let gen_row schema : Tuple.t Gen.t =
  Gen.map Tuple.of_list
    (Gen.flatten_l
       (List.map
          (fun (c : Schema.column) -> gen_value_of_type c.Schema.ctype)
          (Schema.to_list schema)))

let gen_relation ?(max_rows = 14) schema : Relation.t Gen.t =
  Gen.map (Relation.make schema)
    (Gen.list_size (Gen.int_range 0 max_rows) (gen_row schema))

(* ---------- random predicates over the group schema ---------- *)

let gen_comparison : Expr.t Gen.t =
  let open Expr in
  Gen.oneof
    [
      Gen.map (fun i -> column "a" >^ int i) (Gen.int_range (-4) 4);
      Gen.map (fun i -> column "b" <=^ int i) (Gen.int_range (-4) 4);
      Gen.map
        (fun f -> column "c" <^ float (float_of_int f /. 2.))
        (Gen.int_range (-5) 5);
      Gen.map
        (fun c -> column "d" ==^ str (String.make 1 c))
        (Gen.char_range 'a' 'e');
      Gen.map (fun i -> column "a" ==^ int i) (Gen.int_range (-3) 3);
    ]

let gen_pred : Expr.t Gen.t =
  let open Expr in
  Gen.sized_size (Gen.int_range 0 2) (fun n ->
      Gen.fix
        (fun self n ->
          if n = 0 then gen_comparison
          else
            Gen.oneof
              [
                gen_comparison;
                Gen.map2 (fun a b -> a &&& b) (self (n - 1)) (self (n - 1));
                Gen.map2 (fun a b -> a ||| b) (self (n - 1)) (self (n - 1));
                Gen.map not_ (self (n - 1));
              ])
        n)

(* ---------- random per-group queries ---------- *)

let g = Plan.group_scan ~var:"g" g_schema

(* A family of per-group query templates with random parameters,
   covering the full operator alphabet (select, project, distinct,
   orderby, groupby, aggregate, apply, exists, union all). *)
let gen_pgq : Plan.t Gen.t =
  let open Expr in
  let map = Gen.map and map2 = Gen.map2 and oneof = Gen.oneof in
  let select_tpl = map (fun p -> Plan.select p g) gen_pred in
  let project_tpl =
    map
      (fun p ->
        Plan.project
          [ (column "a", "a"); (column "c" *^ float 2., "c2") ]
          (Plan.select p g))
      gen_pred
  in
  let distinct_tpl =
    map
      (fun p ->
        Plan.distinct (Plan.project [ (column "d", "d") ] (Plan.select p g)))
      gen_pred
  in
  let orderby_tpl =
    map
      (fun p ->
        Plan.project
          [ (column "a", "a") ]
          (Plan.order_by [ (column "c", Plan.Desc) ] (Plan.select p g)))
      gen_pred
  in
  let aggregate_tpl =
    map
      (fun p ->
        Plan.aggregate
          [ (count_star, "n"); (avg (column "c"), "avg_c");
            (min_ (column "a"), "min_a") ]
          (Plan.select p g))
      gen_pred
  in
  let groupby_tpl =
    map
      (fun p ->
        Plan.group_by [ Expr.col "d" ]
          [ (sum (column "a"), "sum_a") ]
          (Plan.select p g))
      gen_pred
  in
  let apply_scalar_tpl =
    map
      (fun p ->
        Plan.project
          [ (column "a", "a"); (column "avg_c", "avg_c") ]
          (Plan.select
             (column "c" >=^ column "avg_c")
             (Plan.apply (Plan.select p g)
                (Plan.aggregate [ (avg (column "c"), "avg_c") ] g))))
      gen_pred
  in
  let apply_exists_tpl =
    map
      (fun p -> Plan.apply g (Plan.exists (Plan.select p g)))
      gen_pred
  in
  let union_tpl =
    map2
      (fun p1 p2 ->
        Plan.union_all
          [
            Plan.project [ (column "a", "x") ] (Plan.select p1 g);
            Plan.project [ (column "b", "x") ] (Plan.select p2 g);
          ])
      gen_pred gen_pred
  in
  oneof
    [
      select_tpl; project_tpl; distinct_tpl; orderby_tpl; aggregate_tpl;
      groupby_tpl; apply_scalar_tpl; apply_exists_tpl; union_tpl;
    ]

let gen_gcols : Expr.col_ref list Gen.t =
  Gen.oneofl
    [
      [ Expr.col "a" ];
      [ Expr.col "d" ];
      [ Expr.col "a"; Expr.col "d" ];
      [ Expr.col "b" ];
    ]

(* ---------- catalog plumbing for random relations ---------- *)

let catalog_with_r rel =
  let cat = Catalog.create () in
  let t =
    Table.create "r"
      (List.map
         (fun (c : Schema.column) -> (c.Schema.cname, c.Schema.ctype))
         (Schema.to_list g_schema))
  in
  Relation.iter (Table.insert t) rel;
  Catalog.add_table cat t;
  cat

let scan_r = Plan.table_scan ~table:"r" ~alias:"r" g_schema

(* strip the table qualifier so plans over "r" bind like group plans *)
let unqualified_scan_r =
  Plan.project
    (List.map
       (fun (c : Schema.column) ->
         (Expr.Col (Expr.col ~qual:"r" c.Schema.cname), c.Schema.cname))
       (Schema.to_list g_schema))
    scan_r

(* replace the group scan by a subplan (to embed PGQs over the table) *)
let rec substitute_group plan replacement =
  match plan with
  | Plan.Group_scan { var = "g"; _ } -> replacement
  | p ->
      Plan.with_children p
        (List.map (fun c -> substitute_group c replacement) (Plan.children p))

(* ---------- properties ---------- *)

let prop_exec_matches_reference =
  QCheck2.Test.make ~count:200 ~name:"executor = reference on random plans"
    (Gen.pair (gen_relation g_schema) gen_pgq)
    (fun (rel, pgq) ->
      let cat = catalog_with_r rel in
      let plan = substitute_group pgq unqualified_scan_r in
      let reference = Reference.run cat plan in
      let hash =
        Executor.run ~config:(Compile.config_with ~partition:Compile.Hash_partition ())
          cat plan
      in
      let sort =
        Executor.run ~config:(Compile.config_with ~partition:Compile.Sort_partition ())
          cat plan
      in
      Relation.equal_as_multiset reference hash
      && Relation.equal_as_multiset reference sort)

let prop_gapply_matches_formula =
  QCheck2.Test.make ~count:200
    ~name:"GApply = the paper's set-theoretic definition"
    (Gen.triple (gen_relation g_schema) gen_gcols gen_pgq)
    (fun (rel, gcols, pgq) ->
      let cat = catalog_with_r rel in
      let plan =
        Plan.g_apply ~gcols ~var:"g" ~outer:unqualified_scan_r ~pgq
      in
      (* the formula, computed by hand *)
      let idxs =
        List.map (fun (r : Expr.col_ref) -> Schema.find r.Expr.name g_schema)
          gcols
      in
      let base =
        Executor.run cat unqualified_scan_r
      in
      let keys =
        Relation.rows (Relation.distinct (Relation.project idxs base))
      in
      let expected =
        List.concat_map
          (fun key ->
            let group =
              Relation.filter_rows
                (fun row -> Tuple.equal (Tuple.project idxs row) key)
                base
            in
            let env =
              Env.bind_group "g" group (Env.make cat)
            in
            let result = Executor.run_in env pgq in
            List.map (Tuple.concat key) (Relation.rows result))
          keys
      in
      let actual = Executor.run cat plan in
      let expected_rel =
        Relation.make (Relation.schema actual) expected
      in
      Relation.equal_as_multiset expected_rel actual)

let prop_theorem1_covering_range =
  QCheck2.Test.make ~count:300
    ~name:"Theorem 1: PGQ(group) = PGQ(covering-range(group))"
    (Gen.pair (gen_relation g_schema) gen_pgq)
    (fun (group, pgq) ->
      match Covering_range.of_pgq ~var:"g" pgq with
      | Covering_range.Whole -> true (* nothing to check *)
      | Covering_range.Cond sigma ->
          let cat = Catalog.create () in
          let run g_rel =
            let env = Env.bind_group "g" g_rel (Env.make cat) in
            Reference.eval env pgq
          in
          let full = run group in
          let filtered =
            Relation.filter_rows
              (fun row ->
                Truth.to_bool
                  (Eval.eval_pred ~frames:[] g_schema row sigma))
              group
          in
          let restricted = run filtered in
          Relation.equal_as_multiset full restricted)

let prop_empty_on_empty_sound =
  QCheck2.Test.make ~count:200 ~name:"emptyOnEmpty analysis is sound"
    gen_pgq
    (fun pgq ->
      let cat = Catalog.create () in
      let env = Env.bind_group "g" (Relation.empty g_schema) (Env.make cat) in
      let result = Reference.eval env pgq in
      (* soundness: analysis=true must imply an empty result *)
      (not (Empty_on_empty.check ~var:"g" pgq))
      || Relation.is_empty result)

let prop_selection_rule_preserves =
  QCheck2.Test.make ~count:200
    ~name:"selection-before-GApply rewrite preserves results"
    (Gen.triple (gen_relation g_schema) gen_gcols gen_pgq)
    (fun (rel, gcols, pgq) ->
      let cat = catalog_with_r rel in
      let plan =
        Plan.g_apply ~gcols ~var:"g" ~outer:unqualified_scan_r ~pgq
      in
      match Optimizer.force_rule "selection-before-gapply" cat plan with
      | None -> true
      | Some plan' ->
          Relation.equal_as_multiset (Reference.run cat plan)
            (Executor.run cat plan'))

let prop_gapply_to_groupby_preserves =
  QCheck2.Test.make ~count:200
    ~name:"gapply-to-groupby rewrite preserves results"
    (Gen.triple (gen_relation g_schema) gen_gcols Gen.bool)
    (fun (rel, gcols, use_groupby_form) ->
      let cat = catalog_with_r rel in
      let pgq =
        if use_groupby_form then
          Plan.group_by [ Expr.col "d" ]
            [ (Expr.count_star, "n"); (Expr.avg (Expr.column "c"), "avg_c") ]
            g
        else
          Plan.aggregate
            [ (Expr.count_star, "n"); (Expr.avg (Expr.column "c"), "avg_c") ]
            g
      in
      let plan =
        Plan.g_apply ~gcols ~var:"g" ~outer:unqualified_scan_r ~pgq
      in
      match Optimizer.force_rule "gapply-to-groupby" cat plan with
      | None -> false (* must always fire on this shape *)
      | Some plan' ->
          Relation.equal_as_multiset (Reference.run cat plan)
            (Executor.run cat plan'))

let prop_group_selection_exists_preserves =
  QCheck2.Test.make ~count:200
    ~name:"group-selection-exists rewrite preserves results"
    (Gen.triple (gen_relation g_schema) gen_gcols gen_pred)
    (fun (rel, gcols, pred) ->
      let cat = catalog_with_r rel in
      let pgq = Plan.apply g (Plan.exists (Plan.select pred g)) in
      let plan =
        Plan.g_apply ~gcols ~var:"g" ~outer:unqualified_scan_r ~pgq
      in
      match Optimizer.force_rule "group-selection-exists" cat plan with
      | None -> false
      | Some plan' ->
          Relation.equal_as_multiset (Reference.run cat plan)
            (Executor.run cat plan'))

let prop_optimizer_preserves =
  QCheck2.Test.make ~count:150
    ~name:"full optimizer preserves results on random GApply plans"
    (Gen.triple (gen_relation g_schema) gen_gcols gen_pgq)
    (fun (rel, gcols, pgq) ->
      let cat = catalog_with_r rel in
      let plan =
        Plan.g_apply ~gcols ~var:"g" ~outer:unqualified_scan_r ~pgq
      in
      let { Optimizer.plan = plan'; _ } = Optimizer.optimize cat plan in
      Relation.equal_as_multiset (Reference.run cat plan)
        (Executor.run cat plan'))

(* ---------- aggregates vs naive recomputation ---------- *)

let prop_aggregates_match_naive =
  QCheck2.Test.make ~count:300 ~name:"accumulators = naive aggregation"
    (Gen.list_size (Gen.int_range 0 20) (gen_value_of_type Datatype.Int))
    (fun values ->
      let non_null = List.filter (fun v -> not (Value.is_null v)) values in
      let ints =
        List.map (function Value.Int i -> i | _ -> 0) non_null
      in
      let run spec =
        let st = Agg_state.create spec in
        List.iter (Agg_state.add st) values;
        Agg_state.finish st
      in
      let check_count =
        Value.equal_total
          (run (Expr.count (Expr.column "x")))
          (Value.Int (List.length non_null))
      in
      let check_sum =
        match run (Expr.sum (Expr.column "x")) with
        | Value.Null -> non_null = []
        | Value.Int s -> s = List.fold_left ( + ) 0 ints
        | _ -> false
      in
      let check_min =
        match run (Expr.min_ (Expr.column "x")) with
        | Value.Null -> non_null = []
        | v ->
            Value.equal_total v
              (Value.Int (List.fold_left min max_int ints))
      in
      check_count && check_sum && check_min)

(* ---------- SQL printer/parser round-trip ---------- *)

let gen_sql_query : string Gen.t =
  let open Gen in
  let col = oneofl [ "a"; "b"; "c" ] in
  let table = oneofl [ "t"; "u" ] in
  let lit = map string_of_int (int_range 0 99) in
  let cmp = oneofl [ "="; "<>"; "<"; "<="; ">"; ">=" ] in
  let pred =
    map3 (fun c op v -> Printf.sprintf "%s %s %s" c op v) col cmp lit
  in
  let pred2 =
    map3 (fun p1 conj p2 -> Printf.sprintf "%s %s %s" p1 conj p2) pred
      (oneofl [ "and"; "or" ])
      pred
  in
  oneof
    [
      map2 (fun c t -> Printf.sprintf "select %s from %s" c t) col table;
      map3
        (fun c t p -> Printf.sprintf "select %s from %s where %s" c t p)
        col table pred2;
      map3
        (fun c t p ->
          Printf.sprintf
            "select %s, count(*) from %s where %s group by %s having \
             count(*) > 1"
            c t p c)
        col table pred;
      map2
        (fun c t ->
          Printf.sprintf
            "select gapply(select %s from g) from %s group by %s : g" c t c)
        col table;
      map3
        (fun c t p ->
          Printf.sprintf
            "select %s from %s where exists (select %s from u where %s) \
             order by %s desc"
            c t c p c)
        col table pred;
    ]

let prop_sql_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"SQL print/parse round-trip is stable"
    gen_sql_query
    (fun src ->
      let q1 = Sql_parser.parse_query_string src in
      let s1 = Sql_ast.query_to_string q1 in
      let q2 = Sql_parser.parse_query_string s1 in
      String.equal s1 (Sql_ast.query_to_string q2))

(* ---------- value laws ---------- *)

let gen_any_value =
  Gen.oneof
    (List.map gen_value_of_type
       [ Datatype.Int; Datatype.Float; Datatype.Str; Datatype.Bool ])

let prop_total_order_consistent =
  QCheck2.Test.make ~count:500 ~name:"total order: equality matches hash"
    (Gen.pair gen_any_value gen_any_value)
    (fun (a, b) ->
      (not (Value.equal_total a b)) || Value.hash a = Value.hash b)

let prop_total_order_antisymmetric =
  QCheck2.Test.make ~count:500 ~name:"total order is antisymmetric"
    (Gen.pair gen_any_value gen_any_value)
    (fun (a, b) ->
      let ab = Value.compare_total a b and ba = Value.compare_total b a in
      (ab = 0 && ba = 0) || (ab > 0 && ba < 0) || (ab < 0 && ba > 0))

let prop_truth_de_morgan =
  QCheck2.Test.make ~count:200 ~name:"3VL De Morgan laws"
    (Gen.pair
       (Gen.oneofl [ Truth.True; Truth.False; Truth.Unknown ])
       (Gen.oneofl [ Truth.True; Truth.False; Truth.Unknown ]))
    (fun (a, b) ->
      Truth.equal
        (Truth.not_ (Truth.and_ a b))
        (Truth.or_ (Truth.not_ a) (Truth.not_ b))
      && Truth.equal
           (Truth.not_ (Truth.or_ a b))
           (Truth.and_ (Truth.not_ a) (Truth.not_ b)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_exec_matches_reference;
      prop_gapply_matches_formula;
      prop_theorem1_covering_range;
      prop_empty_on_empty_sound;
      prop_selection_rule_preserves;
      prop_gapply_to_groupby_preserves;
      prop_group_selection_exists_preserves;
      prop_optimizer_preserves;
      prop_aggregates_match_naive;
      prop_sql_roundtrip;
      prop_total_order_consistent;
      prop_total_order_antisymmetric;
      prop_truth_de_morgan;
    ]

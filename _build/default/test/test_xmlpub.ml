(* XML publishing tests: serializer, views, both publishing pipelines
   (sorted outer union vs GApply), the constant-space tagger, and the
   FLWR queries of the paper. *)

open Support

let cat = lazy (mini_catalog ())

(* ---------- xml model ---------- *)

let test_serializer () =
  let doc =
    Xml.element "a" ~attrs:[ ("k", "v") ]
      [ Xml.element "b" [ Xml.text "x<y&z" ]; Xml.element "c" [] ]
  in
  Alcotest.(check string) "serialized"
    "<a k=\"v\"><b>x&lt;y&amp;z</b><c/></a>" (Xml.to_string doc)

let test_canonicalize_unordered () =
  let d1 = Xml.element "a" [ Xml.element "b" []; Xml.element "c" [] ] in
  let d2 = Xml.element "a" [ Xml.element "c" []; Xml.element "b" [] ] in
  Alcotest.(check bool) "sibling order ignored" true
    (Xml.equal_unordered d1 d2);
  let d3 = Xml.element "a" [ Xml.element "b" [] ] in
  Alcotest.(check bool) "different content differs" false
    (Xml.equal_unordered d1 d3)

(* ---------- publishing the figure-1 view ---------- *)

let spec () = Publish.of_view Xml_view.figure1

let publish_both cat spec =
  let ou = Tagger.publish ~strategy:Tagger.Sorted_outer_union cat spec in
  let ga = Tagger.publish ~strategy:Tagger.Gapply_pass cat spec in
  Alcotest.(check bool) "pipelines publish the same document" true
    (Xml.equal_unordered ou ga);
  ou

let count_elements tag doc =
  let rec go acc = function
    | Xml.Text _ -> acc
    | Xml.Element (t, _, children) ->
        List.fold_left go (if String.equal t tag then acc + 1 else acc)
          children
  in
  go 0 doc

let test_figure1_pipelines_agree () =
  let cat = Lazy.force cat in
  let doc = publish_both cat (spec ()) in
  Alcotest.(check int) "3 suppliers" 3 (count_elements "supplier" doc);
  Alcotest.(check int) "5 parts" 5 (count_elements "part" doc)

let test_parent_without_children_is_published () =
  let cat = Lazy.force cat in
  let doc = publish_both cat (spec ()) in
  (* Initech supplies nothing but must still appear *)
  let rec contains_text needle = function
    | Xml.Text s -> String.equal s needle
    | Xml.Element (_, _, children) -> List.exists (contains_text needle) children
  in
  Alcotest.(check bool) "childless supplier present" true
    (contains_text "Initech" doc)

let test_q1_flwr () =
  let cat = Lazy.force cat in
  let spec = Flwr.compile Flwr.q1 in
  let doc = publish_both cat spec in
  Alcotest.(check int) "an avg_price per supplier with parts" 2
    (count_elements "avg_price" doc)

let test_exists_flwr () =
  let cat = Lazy.force cat in
  let spec = Flwr.compile (Flwr.expensive_part_suppliers 35.) in
  let doc = publish_both cat spec in
  (* only Globex (part at 40) qualifies *)
  Alcotest.(check int) "one supplier" 1 (count_elements "supplier" doc);
  Alcotest.(check int) "its two parts" 2 (count_elements "part" doc)

let test_aggregate_flwr () =
  let cat = Lazy.force cat in
  let spec = Flwr.compile (Flwr.high_average_suppliers 22.) in
  let doc = publish_both cat spec in
  (* Globex has avg 30 > 22; Acme has avg 20 *)
  Alcotest.(check int) "one supplier" 1 (count_elements "supplier" doc)

let test_flwr_rendering () =
  let s = Flwr.to_xquery (Flwr.expensive_part_suppliers 1000.) in
  Alcotest.(check bool) "mentions Where" true
    (String.length s > 0
    && (try
          ignore (String.index s 'W');
          true
        with Not_found -> false))

let test_streaming_tagger_matches_tree () =
  let cat = Lazy.force cat in
  let plan, enc = Publish.outer_union_plan cat (spec ()) in
  let run () =
    let compiled = Compile.plan plan in
    compiled.Compile.run (Env.make cat)
  in
  let tree = Tagger.tag enc (run ()) in
  let buf = Buffer.create 256 in
  Tagger.tag_to_buffer enc (run ()) buf;
  Alcotest.(check string) "streaming output equals tree serialization"
    (Xml.to_string tree) (Buffer.contents buf)

let test_tagger_rejects_unclustered_stream () =
  let cat = Lazy.force cat in
  let plan, enc = Publish.outer_union_plan cat (spec ()) in
  (* strip the order-by: the unordered union puts all parents first, so
     child rows arrive while another parent is open *)
  let unordered =
    match plan with
    | Plan.Order_by { input; _ } -> input
    | p -> p
  in
  let compiled = Compile.plan unordered in
  Alcotest.(check bool) "raises on unclustered input" true
    (try
       ignore (Tagger.tag enc (compiled.Compile.run (Env.make cat)));
       false
     with Errors.Exec_error _ -> true)

let test_pipelines_on_tpch () =
  let cat = Tpch_gen.catalog ~msf:0.05 () in
  let doc = publish_both cat (Flwr.compile Flwr.q1) in
  Alcotest.(check bool) "non-trivial document" true
    (count_elements "part" doc > 10)

let suite =
  [
    Alcotest.test_case "serializer + escaping" `Quick test_serializer;
    Alcotest.test_case "unordered canonical comparison" `Quick
      test_canonicalize_unordered;
    Alcotest.test_case "figure-1 pipelines agree" `Quick
      test_figure1_pipelines_agree;
    Alcotest.test_case "childless parent is published" `Quick
      test_parent_without_children_is_published;
    Alcotest.test_case "FLWR Q1 (nested + aggregate)" `Quick test_q1_flwr;
    Alcotest.test_case "FLWR existential selection" `Quick test_exists_flwr;
    Alcotest.test_case "FLWR aggregate selection" `Quick test_aggregate_flwr;
    Alcotest.test_case "FLWR rendering" `Quick test_flwr_rendering;
    Alcotest.test_case "streaming tagger = tree tagger" `Quick
      test_streaming_tagger_matches_tree;
    Alcotest.test_case "tagger rejects unclustered input" `Quick
      test_tagger_rejects_unclustered_stream;
    Alcotest.test_case "pipelines agree on TPC-H data" `Quick
      test_pipelines_on_tpch;
  ]

(* Unit tests for the Section 4 analyses: covering range, emptyOnEmpty,
   gp-eval columns. *)

open Support
open Expr

let gschema =
  schema
    [
      ("ps_suppkey", Datatype.Int);
      ("p_name", Datatype.Str);
      ("p_retailprice", Datatype.Float);
      ("p_brand", Datatype.Str);
    ]

let g = Plan.group_scan ~var:"g" gschema

let brand_a = column "p_brand" ==^ str "Brand#A"
let brand_b = column "p_brand" ==^ str "Brand#B"

let range_testable =
  Alcotest.testable
    (fun ppf -> function
      | Covering_range.Whole -> Format.pp_print_string ppf "whole"
      | Covering_range.Cond e -> Format.fprintf ppf "cond %a" Expr.pp e)
    (fun a b ->
      match (a, b) with
      | Covering_range.Whole, Covering_range.Whole -> true
      | Covering_range.Cond x, Covering_range.Cond y -> Expr.equal x y
      | _ -> false)

let check_range = Alcotest.check range_testable

let test_scan_is_whole () =
  check_range "scan" Covering_range.Whole (Covering_range.of_pgq ~var:"g" g)

let test_select_adds_condition () =
  check_range "select" (Covering_range.Cond brand_a)
    (Covering_range.of_pgq ~var:"g" (Plan.select brand_a g));
  check_range "stacked selects"
    (Covering_range.Cond (brand_a &&& brand_b))
    (Covering_range.of_pgq ~var:"g"
       (Plan.select brand_b (Plan.select brand_a g)))

let test_select_above_aggregate_is_ignored () =
  (* a condition over an aggregate result covers nothing extra *)
  let pgq =
    Plan.select (column "a" >^ float 10.)
      (Plan.aggregate [ (avg (column "p_retailprice"), "a") ] g)
  in
  check_range "select above aggregate" Covering_range.Whole
    (Covering_range.of_pgq ~var:"g" pgq)

let test_union_disjoins () =
  let pgq =
    Plan.union_all [ Plan.select brand_a g; Plan.select brand_b g ]
  in
  check_range "union" (Covering_range.Cond (brand_a ||| brand_b))
    (Covering_range.of_pgq ~var:"g" pgq)

let test_figure3_example () =
  (* parts of brand A priced above the average price of brand-B parts:
     select[price >= avgb](apply(select[brandA](g),
                                 aggregate[avg](select[brandB](g)))) *)
  let pgq =
    Plan.select
      (column "p_retailprice" >=^ column "avgb")
      (Plan.apply
         (Plan.select brand_a g)
         (Plan.aggregate
            [ (avg (column "p_retailprice"), "avgb") ]
            (Plan.select brand_b g)))
  in
  check_range "figure 3" (Covering_range.Cond (brand_a ||| brand_b))
    (Covering_range.of_pgq ~var:"g" pgq)

let test_condition_on_renamed_column_dropped () =
  (* selection over a renamed column cannot be pushed: it is dropped,
     weakening the range to the child's *)
  let pgq =
    Plan.select (column "brand2" ==^ str "Brand#A")
      (Plan.project [ (column "p_brand", "brand2") ] g)
  in
  check_range "renamed" Covering_range.Whole
    (Covering_range.of_pgq ~var:"g" pgq)

let test_projection_preserves_transparency () =
  let pgq =
    Plan.select brand_a
      (Plan.project
         [ (column "p_brand", "p_brand"); (column "p_name", "p_name") ]
         g)
  in
  check_range "projected pass-through" (Covering_range.Cond brand_a)
    (Covering_range.of_pgq ~var:"g" pgq)

let test_groupby_keys_stay_transparent () =
  let pgq =
    Plan.select brand_a
      (Plan.group_by [ Expr.col "p_brand" ] [ (count_star, "n") ] g)
  in
  (* the select sits above a groupby (complicated): condition ignored *)
  check_range "above groupby" Covering_range.Whole
    (Covering_range.of_pgq ~var:"g" pgq)

(* ---------- emptyOnEmpty ---------- *)

let eoe = Empty_on_empty.check ~var:"g"

let test_empty_on_empty () =
  Alcotest.(check bool) "scan" true (eoe g);
  Alcotest.(check bool) "select" true (eoe (Plan.select brand_a g));
  Alcotest.(check bool) "aggregate" false
    (eoe (Plan.aggregate [ (count_star, "n") ] g));
  Alcotest.(check bool) "groupby" true
    (eoe (Plan.group_by [ Expr.col "p_brand" ] [ (count_star, "n") ] g));
  Alcotest.(check bool) "apply outer side governs" true
    (eoe (Plan.apply g (Plan.aggregate [ (count_star, "n") ] g)));
  Alcotest.(check bool) "apply with aggregate outer" false
    (eoe (Plan.apply (Plan.aggregate [ (count_star, "n") ] g) g));
  Alcotest.(check bool) "union all true" true
    (eoe (Plan.union_all [ Plan.select brand_a g; Plan.distinct g ]));
  Alcotest.(check bool) "union with aggregate branch" false
    (eoe
       (Plan.union_all
          [ Plan.select brand_a g; Plan.aggregate [ (count_star, "n") ] g ]));
  Alcotest.(check bool) "exists" true (eoe (Plan.exists g));
  Alcotest.(check bool) "not exists" false (eoe (Plan.exists ~negated:true g));
  Alcotest.(check bool) "orderby" true
    (eoe (Plan.order_by [ (column "p_name", Plan.Asc) ] g))

(* ---------- gp-eval columns ---------- *)

let gp pgq = Gp_eval.of_pgq ~group_schema:gschema pgq

let test_gp_eval_scan_empty () =
  Alcotest.(check (list string)) "scan needs nothing" [] (gp g)

let test_gp_eval_select () =
  Alcotest.(check (list string)) "selection column" [ "p_brand" ]
    (gp (Plan.select brand_a g))

let test_gp_eval_projection_not_included () =
  Alcotest.(check (list string)) "projection alone needs nothing" []
    (gp (Plan.project [ (column "p_name", "p_name") ] g))

let test_gp_eval_aggregate_and_groupby () =
  Alcotest.(check (list string)) "aggregate argument" [ "p_retailprice" ]
    (gp (Plan.aggregate [ (avg (column "p_retailprice"), "a") ] g));
  Alcotest.(check (list string)) "groupby keys + agg args"
    [ "p_brand"; "p_retailprice" ]
    (gp
       (Plan.group_by [ Expr.col "p_brand" ]
          [ (min_ (column "p_retailprice"), "m") ]
          g))

let test_gp_eval_q2_shape () =
  let pgq =
    Plan.select
      (column "p_retailprice" >=^ column "avgp")
      (Plan.apply g
         (Plan.aggregate [ (avg (column "p_retailprice"), "avgp") ] g))
  in
  (* avgp is computed inside the PGQ and must not count as a group column *)
  Alcotest.(check (list string)) "only the price column"
    [ "p_retailprice" ] (gp pgq)

let test_referenced_and_needs_all () =
  let refs, needs_all =
    Gp_eval.referenced_and_needs_all ~group_schema:gschema g
  in
  Alcotest.(check bool) "identity needs all" true needs_all;
  Alcotest.(check (list string)) "no explicit references" [] refs;
  let refs, needs_all =
    Gp_eval.referenced_and_needs_all ~group_schema:gschema
      (Plan.project
         [ (column "p_name", "x") ]
         (Plan.select brand_a g))
  in
  Alcotest.(check bool) "projection cuts" false needs_all;
  Alcotest.(check (list string)) "referenced set" [ "p_brand"; "p_name" ] refs

let suite =
  [
    Alcotest.test_case "range: scan is whole" `Quick test_scan_is_whole;
    Alcotest.test_case "range: select adds condition" `Quick
      test_select_adds_condition;
    Alcotest.test_case "range: select above aggregate" `Quick
      test_select_above_aggregate_is_ignored;
    Alcotest.test_case "range: union disjoins" `Quick test_union_disjoins;
    Alcotest.test_case "range: figure 3 example" `Quick test_figure3_example;
    Alcotest.test_case "range: renamed column dropped" `Quick
      test_condition_on_renamed_column_dropped;
    Alcotest.test_case "range: projection transparency" `Quick
      test_projection_preserves_transparency;
    Alcotest.test_case "range: select above groupby" `Quick
      test_groupby_keys_stay_transparent;
    Alcotest.test_case "emptyOnEmpty table" `Quick test_empty_on_empty;
    Alcotest.test_case "gp-eval: scan" `Quick test_gp_eval_scan_empty;
    Alcotest.test_case "gp-eval: select" `Quick test_gp_eval_select;
    Alcotest.test_case "gp-eval: projection excluded" `Quick
      test_gp_eval_projection_not_included;
    Alcotest.test_case "gp-eval: aggregate/groupby" `Quick
      test_gp_eval_aggregate_and_groupby;
    Alcotest.test_case "gp-eval: Q2 shape" `Quick test_gp_eval_q2_shape;
    Alcotest.test_case "gp-eval: referenced/needs-all" `Quick
      test_referenced_and_needs_all;
  ]

(* Tests for engine extensions layered on the paper:
   - the Section 3.1 clustering guarantee of gapply-syntax results;
   - null-safe equality (used by group-selection join-backs);
   - NULL grouping keys surviving the group-selection rewrites;
   - redundant FK-join elimination in the qualifying-keys phase;
   - derived-table aliasing. *)

open Support
open Expr

let keys_non_decreasing rel =
  let keys = List.map (fun t -> Tuple.get t 0) (Relation.rows rel) in
  let rec go = function
    | a :: (b :: _ as rest) -> Value.compare_total a b <= 0 && go rest
    | _ -> true
  in
  go keys

let test_gapply_syntax_is_clustered () =
  (* Section 3.1: "the results are clustered by the values in the
     grouping columns" — even under hash partitioning *)
  let db = Engine.create ~partition:Compile.Hash_partition () in
  Engine.load_tpch db ~msf:0.1;
  let r = Engine.query db Workloads.q1_gapply in
  Alcotest.(check bool) "hash-partitioned gapply output clustered" true
    (keys_non_decreasing r);
  Engine.set_partition_strategy db Compile.Sort_partition;
  let r = Engine.query db Workloads.q1_gapply in
  Alcotest.(check bool) "sort-partitioned output clustered" true
    (keys_non_decreasing r)

let test_nulleq_semantics () =
  let s = schema [ ("a", Datatype.Int) ] in
  let ev v e = Eval.eval ~frames:[] s (row [ v ]) e in
  Alcotest.check value_testable "null <=> null is true" (vb true)
    (ev vnull (Binary (Nulleq, column "a", null)));
  Alcotest.check value_testable "1 <=> null is false" (vb false)
    (ev (vi 1) (Binary (Nulleq, column "a", null)));
  Alcotest.check value_testable "1 <=> 1 is true" (vb true)
    (ev (vi 1) (Binary (Nulleq, column "a", int 1)))

let test_nulleq_hash_join_matches_nulls () =
  let cat = Catalog.create () in
  let t1 = Table.create "t1" [ ("a", Datatype.Int) ] in
  Table.insert_all t1 [ row [ vi 1 ]; row [ vnull ] ];
  let t2 = Table.create "t2" [ ("b", Datatype.Int) ] in
  Table.insert_all t2 [ row [ vi 1 ]; row [ vnull ]; row [ vnull ] ];
  Catalog.add_table cat t1;
  Catalog.add_table cat t2;
  let p =
    Plan.join
      (Binary (Nulleq, column "a", column "b"))
      (scan cat "t1") (scan cat "t2")
  in
  let r = run_checked cat p in
  (* 1 matches 1; null matches both nulls *)
  Alcotest.(check int) "null-safe join rows" 3 (Relation.cardinality r)

let test_group_selection_with_null_keys () =
  (* GApply groups NULL keys together; the join-back rewrite must keep
     that group (it uses null-safe equality) *)
  let cat = Catalog.create () in
  let t =
    Table.create "t" [ ("k", Datatype.Int); ("v", Datatype.Float) ]
  in
  Table.insert_all t
    [
      row [ vi 1; vf 10. ];
      row [ vnull; vf 99. ];
      row [ vnull; vf 1. ];
      row [ vi 2; vf 5. ];
    ];
  Catalog.add_table cat t;
  let g_schema = schema [ ("k", Datatype.Int); ("v", Datatype.Float) ] in
  let g = Plan.group_scan ~var:"g" g_schema in
  let outer =
    Plan.project
      [ (Expr.Col (Expr.col ~qual:"t" "k"), "k");
        (Expr.Col (Expr.col ~qual:"t" "v"), "v") ]
      (scan cat "t")
  in
  let plan =
    Plan.g_apply
      ~gcols:[ Expr.col "k" ]
      ~var:"g" ~outer
      ~pgq:(Plan.apply g (Plan.exists (Plan.select (column "v" >^ float 50.) g)))
  in
  match Optimizer.force_rule "group-selection-exists" cat plan with
  | None -> Alcotest.fail "rule did not fire"
  | Some plan' ->
      let before = Reference.run cat plan in
      (* the NULL-keyed group qualifies (v = 99): 2 rows *)
      Alcotest.(check int) "null group present" 2
        (Relation.cardinality before);
      check_rel "rewrite keeps the NULL-keyed group" before
        (Executor.run cat plan')

let count_scans_of table plan =
  Plan.fold
    (fun acc p ->
      match p with
      | Plan.Table_scan { table = t; _ } when String.equal t table -> acc + 1
      | _ -> acc)
    0 plan

let test_fk_join_pruning_in_keys_phase () =
  let cat = Tpch_gen.catalog ~msf:0.1 () in
  let src = Workloads.rule_aggregate_selection_query ~avg_bound:1500. in
  let plan =
    Sql_binder.bind_query cat (Sql_parser.parse_query_string src)
  in
  match Optimizer.force_rule "group-selection-aggregate" cat plan with
  | None -> Alcotest.fail "rule did not fire"
  | Some plan' ->
      (* the original outer joins supplier; the qualifying-keys phase
         must have pruned it, so the rewrite scans supplier once (for
         the rebuild side) instead of twice *)
      Alcotest.(check int) "supplier scanned once" 1
        (count_scans_of "supplier" plan');
      Alcotest.(check int) "partsupp scanned twice" 2
        (count_scans_of "partsupp" plan');
      check_rel "pruned rewrite preserves results"
        (Reference.run cat plan)
        (Executor.run cat plan')

let test_fk_pruning_requires_fk () =
  (* without the FK annotation the join must survive in the keys side *)
  let cat = Tpch_gen.catalog ~msf:0.05 () in
  let src =
    "select gapply(select * from g where (select avg(p_retailprice) from \
     g) > 1500.0) from partsupp, part, supplier where ps_partkey = \
     p_partkey and ps_suppkey = s_nationkey group by ps_suppkey : g"
  in
  (* joining on s_nationkey is not the declared FK: no pruning *)
  let plan =
    Sql_binder.bind_query cat (Sql_parser.parse_query_string src)
  in
  match Optimizer.force_rule "group-selection-aggregate" cat plan with
  | None -> () (* fine: rule may refuse *)
  | Some plan' ->
      Alcotest.(check int) "supplier scanned twice (no pruning)" 2
        (count_scans_of "supplier" plan');
      check_rel "unpruned rewrite preserves results"
        (Reference.run cat plan)
        (Executor.run cat plan')

let test_alias_node_roundtrip () =
  let cat = mini_catalog () in
  let p =
    Plan.alias "v"
      (Plan.project [ (column "p_name", "n") ] (scan cat "part"))
  in
  let s = Props.schema_of p in
  Alcotest.(check bool) "alias re-qualifies" true
    ((Schema.get s 0).Schema.source = Some "v");
  let r = run_checked cat p in
  Alcotest.(check int) "alias is identity on rows" 4 (Relation.cardinality r)

let test_engine_script () =
  let db = Engine.create () in
  let outcomes =
    Engine.exec_script db
      "create table t (a int); insert into t values (1), (2), (3); select \
       count(*) from t;"
  in
  match outcomes with
  | [ Engine.Message _; Engine.Message _; Engine.Rows r ] ->
      check_rows "script result" [ [ vi 3 ] ] r
  | _ -> Alcotest.fail "unexpected script outcomes"

let test_uncorrelated_apply_cached_semantics () =
  (* an inner that depends only on the group must behave identically
     whether or not the engine caches it; stress with a group whose rows
     would change a naive per-row implementation *)
  let cat = mini_catalog () in
  let src =
    "select gapply(select p_name from g where p_retailprice >= (select \
     avg(p_retailprice) from g)) from partsupp, part where ps_partkey = \
     p_partkey group by ps_suppkey : g"
  in
  let plan =
    Sql_binder.bind_query cat (Sql_parser.parse_query_string src)
  in
  check_rel "cached apply = reference" (Reference.run cat plan)
    (Executor.run cat plan)

let suite =
  [
    Alcotest.test_case "gapply syntax output is clustered" `Quick
      test_gapply_syntax_is_clustered;
    Alcotest.test_case "null-safe equality semantics" `Quick
      test_nulleq_semantics;
    Alcotest.test_case "null-safe hash join" `Quick
      test_nulleq_hash_join_matches_nulls;
    Alcotest.test_case "group selection keeps NULL-keyed groups" `Quick
      test_group_selection_with_null_keys;
    Alcotest.test_case "FK-join pruning in keys phase" `Quick
      test_fk_join_pruning_in_keys_phase;
    Alcotest.test_case "no pruning without the FK" `Quick
      test_fk_pruning_requires_fk;
    Alcotest.test_case "alias node" `Quick test_alias_node_roundtrip;
    Alcotest.test_case "engine scripts" `Quick test_engine_script;
    Alcotest.test_case "uncorrelated apply caching" `Quick
      test_uncorrelated_apply_cached_semantics;
  ]

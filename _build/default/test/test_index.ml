(* Tests for hash indexes and the index nested-loop join path, plus the
   tuple-keyed hash tables (total value order) they rely on. *)

open Support
open Expr

let test_catalog_index_api () =
  let cat = mini_catalog () in
  Catalog.create_index cat ~name:"part_pk" ~table:"part"
    ~columns:[ "p_partkey" ];
  Alcotest.(check (list string)) "listed" [ "part_pk" ]
    (Catalog.index_names cat);
  Alcotest.(check bool) "found by column set" true
    (Catalog.find_index_on cat ~table:"part" ~cols:[ "p_partkey" ] <> None);
  Alcotest.(check bool) "not found for other columns" true
    (Catalog.find_index_on cat ~table:"part" ~cols:[ "p_size" ] = None);
  Alcotest.(check bool) "duplicate name rejected" true
    (try
       Catalog.create_index cat ~name:"part_pk" ~table:"supplier"
         ~columns:[ "s_suppkey" ];
       false
     with Errors.Name_error _ -> true);
  Catalog.drop_index cat "part_pk";
  Alcotest.(check (list string)) "dropped" [] (Catalog.index_names cat)

let test_index_lookup () =
  let cat = mini_catalog () in
  let part = Catalog.find_table cat "part" in
  let index = Index.create ~name:"i" ~table:part ~columns:[ "p_size" ] in
  Index.refresh index part;
  Alcotest.(check int) "2 distinct sizes" 2 (Index.cardinality index);
  Alcotest.(check int) "size 1 has 2 parts" 2
    (List.length (Index.lookup index (row [ vi 1 ])));
  Alcotest.(check int) "size 9 has none" 0
    (List.length (Index.lookup index (row [ vi 9 ])))

let join_query cat ~use_indexes =
  Executor.run
    ~config:(Compile.config_with ~use_indexes ())
    cat
    (Sql_binder.bind_query cat
       (Sql_parser.parse_query_string
          "select ps_suppkey, p_name from partsupp, part where ps_partkey \
           = p_partkey and p_retailprice > 15"))

let test_index_join_matches_hash_join () =
  let cat = mini_catalog () in
  Catalog.create_index cat ~name:"part_pk" ~table:"part"
    ~columns:[ "p_partkey" ];
  let with_index = join_query cat ~use_indexes:true in
  let without = join_query cat ~use_indexes:false in
  check_rel "index join = hash join" without with_index;
  Alcotest.(check int) "expected rows" 4 (Relation.cardinality with_index)

let test_index_sees_new_rows () =
  let cat = mini_catalog () in
  Catalog.create_index cat ~name:"part_pk" ~table:"part"
    ~columns:[ "p_partkey" ];
  ignore (join_query cat ~use_indexes:true);
  (* grow the table after the index was built and used *)
  Table.insert (Catalog.find_table cat "part")
    (row [ vi 9; vs "widget"; vf 99.; vi 3; vs "Brand#C" ]);
  Table.insert (Catalog.find_table cat "partsupp") (row [ vi 3; vi 9 ]);
  Catalog.invalidate_stats cat "part";
  let r = join_query cat ~use_indexes:true in
  Alcotest.(check int) "new row visible through the index" 5
    (Relation.cardinality r)

let test_create_index_sql () =
  let cat = mini_catalog () in
  (match
     Sql_binder.bind_statement cat
       (Sql_parser.parse_statement
          "create index part_pk on part (p_partkey)")
   with
  | Sql_binder.Bound_ddl msg ->
      Alcotest.(check string) "confirmation" "created index part_pk on part"
        msg
  | _ -> Alcotest.fail "expected DDL");
  Alcotest.(check bool) "index exists" true
    (Catalog.find_index_on cat ~table:"part" ~cols:[ "p_partkey" ] <> None);
  match
    Sql_binder.bind_statement cat
      (Sql_parser.parse_statement "drop index part_pk")
  with
  | Sql_binder.Bound_ddl _ -> ()
  | _ -> Alcotest.fail "expected DDL"

let test_numeric_coercion_in_hash_paths () =
  (* Int and Float keys with the same numeric value must join in every
     physical path, as they do under SQL equality *)
  let cat = Catalog.create () in
  let t1 = Table.create "t1" [ ("a", Datatype.Float) ] in
  Table.insert_all t1 [ row [ vf 1. ]; row [ vf 2.5 ] ];
  let t2 = Table.create "t2" [ ("b", Datatype.Int) ] in
  Table.insert_all t2 [ row [ vi 1 ]; row [ vi 2 ] ];
  Catalog.add_table cat t1;
  Catalog.add_table cat t2;
  let p = Plan.join (column "a" ==^ column "b") (scan cat "t1") (scan cat "t2") in
  let r = run_checked cat p in
  Alcotest.(check int) "1.0 joins 1" 1 (Relation.cardinality r);
  (* and through an index *)
  Catalog.create_index cat ~name:"i2" ~table:"t2" ~columns:[ "b" ];
  let r' = Executor.run cat p in
  check_rel "index probe coerces too" r r'

let test_mixed_type_distinct () =
  let cat = Catalog.create () in
  let t = Table.create "t" [ ("a", Datatype.Float) ] in
  Table.insert_all t [ row [ vi 1 ]; row [ vf 1. ]; row [ vf 2. ] ];
  Catalog.add_table cat t;
  let p = Plan.distinct (scan cat "t") in
  let r = run_checked cat p in
  Alcotest.(check int) "Int 1 and Float 1.0 collapse" 2
    (Relation.cardinality r)

let suite =
  [
    Alcotest.test_case "catalog index API" `Quick test_catalog_index_api;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "index join = hash join" `Quick
      test_index_join_matches_hash_join;
    Alcotest.test_case "index refresh on growth" `Quick
      test_index_sees_new_rows;
    Alcotest.test_case "CREATE/DROP INDEX" `Quick test_create_index_sql;
    Alcotest.test_case "numeric coercion in hash paths" `Quick
      test_numeric_coercion_in_hash_paths;
    Alcotest.test_case "mixed-type distinct" `Quick test_mixed_type_distinct;
  ]

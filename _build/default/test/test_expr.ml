(* Unit tests: expression evaluation, inference, aggregates. *)

open Support
open Expr

let s = schema [ ("a", Datatype.Int); ("b", Datatype.Float); ("c", Datatype.Str) ]
let t = row [ vi 3; vf 2.5; vs "hi" ]

let ev ?(frames = []) e = Eval.eval ~frames s t e
let check_v = Alcotest.check value_testable

let test_basic_eval () =
  check_v "column" (vi 3) (ev (column "a"));
  check_v "arith" (vf 5.5) (ev (column "a" +^ column "b"));
  check_v "comparison" (vb true) (ev (column "a" >^ column "b"));
  check_v "string eq" (vb true) (ev (column "c" ==^ str "hi"))

let test_null_semantics () =
  check_v "null comparison" vnull (ev (column "a" >^ null));
  check_v "is null" (vb false) (ev (Unary (Is_null, column "a")));
  check_v "is not null" (vb true) (ev (Unary (Is_not_null, column "a")));
  check_v "and with unknown short-circuit false" (vb false)
    (ev ((column "a" <^ int 0) &&& (column "a" >^ null)));
  check_v "and with unknown stays unknown" vnull
    (ev ((column "a" >^ int 0) &&& (column "a" >^ null)));
  check_v "or with unknown short-circuit true" (vb true)
    (ev ((column "a" >^ int 0) ||| (column "a" >^ null)))

let test_case_expression () =
  let e =
    Case
      ( [ (column "a" >^ int 10, str "big"); (column "a" >^ int 1, str "mid") ],
        Some (str "small") )
  in
  check_v "case picks first true" (vs "mid") (ev e);
  let no_else = Case ([ (column "a" >^ int 10, str "big") ], None) in
  check_v "case without else is null" vnull (ev no_else)

let test_outer_references () =
  let outer_schema = schema [ ("x", Datatype.Int) ] in
  let frames = [ (outer_schema, row [ vi 42 ]) ] in
  check_v "outer lookup" (vi 42) (ev ~frames (outer "x"));
  check_v "mix outer and local" (vi 45) (ev ~frames (outer "x" +^ column "a"));
  Alcotest.(check bool) "missing outer raises" true
    (try
       ignore (ev (outer "nope"));
       false
     with Errors.Name_error _ -> true)

let test_outer_innermost_shadowing () =
  let sa = schema [ ("x", Datatype.Int) ] in
  let frames = [ (sa, row [ vi 1 ]); (sa, row [ vi 2 ]) ] in
  check_v "innermost frame wins" (vi 1) (ev ~frames (outer "x"))

let test_compile_matches_eval () =
  let exprs =
    [
      column "a" +^ (column "b" *^ float 2.);
      (column "a" >=^ int 3) &&& not_ (column "c" ==^ str "bye");
      Case ([ (column "a" ==^ int 3, column "b") ], Some (float 0.));
      Unary (Neg, column "a");
      column "c" ==^ null;
    ]
  in
  List.iter
    (fun e ->
      let direct = Eval.eval ~frames:[] s t e in
      let compiled = Eval.compile s e [] t in
      check_v ("compile = eval for " ^ Expr.to_string e) direct compiled)
    exprs

let test_conjuncts_roundtrip () =
  let a = column "a" >^ int 0 in
  let b = column "b" <^ float 1. in
  let c = column "c" ==^ str "hi" in
  Alcotest.(check int) "three conjuncts" 3
    (List.length (conjuncts (conjoin [ a; b; c ])));
  Alcotest.(check bool) "or not split" true
    (List.length (conjuncts (a ||| b)) = 1)

let test_columns_analysis () =
  let e = (column "a" +^ outer "o") >^ column ~qual:"t" "b" in
  Alcotest.(check (list string)) "columns" [ "a"; "b" ] (column_names e);
  Alcotest.(check (list string)) "outer columns" [ "o" ]
    (List.map (fun r -> r.name) (outer_columns e));
  Alcotest.(check bool) "references outer" true (references_outer e)

let test_infer () =
  let ty e = Infer.infer_with_schema s e in
  Alcotest.(check string) "int + int" "INT"
    (Datatype.to_string (ty (column "a" +^ int 1)));
  Alcotest.(check string) "int + float" "FLOAT"
    (Datatype.to_string (ty (column "a" +^ column "b")));
  Alcotest.(check string) "comparison" "BOOL"
    (Datatype.to_string (ty (column "a" >^ int 0)));
  Alcotest.(check string) "null literal" "NULL"
    (Datatype.to_string (ty null));
  Alcotest.(check bool) "arith over string rejected" true
    (try
       ignore (ty (column "c" +^ int 1));
       false
     with Errors.Type_error _ -> true)

(* ---------- aggregates ---------- *)

let run_agg spec values =
  let st = Agg_state.create spec in
  List.iter (Agg_state.add st) values;
  Agg_state.finish st

let test_aggregates () =
  check_v "count ignores nulls" (vi 2)
    (run_agg (count (column "a")) [ vi 1; vnull; vi 2 ]);
  check_v "count star counts rows" (vi 3)
    (run_agg count_star [ vnull; vnull; vnull ]);
  check_v "sum ints stays int" (vi 6) (run_agg (sum (column "a")) [ vi 1; vi 2; vi 3 ]);
  check_v "sum mixed is float" (vf 3.5)
    (run_agg (sum (column "a")) [ vi 1; vf 2.5 ]);
  check_v "avg" (vf 2.) (run_agg (avg (column "a")) [ vi 1; vi 3 ]);
  check_v "min" (vi 1) (run_agg (min_ (column "a")) [ vi 3; vi 1; vi 2 ]);
  check_v "max" (vi 3) (run_agg (max_ (column "a")) [ vi 3; vi 1; vi 2 ])

let test_aggregates_empty_and_null () =
  check_v "sum of empty is null" vnull (run_agg (sum (column "a")) []);
  check_v "avg of all nulls is null" vnull
    (run_agg (avg (column "a")) [ vnull; vnull ]);
  check_v "count of empty is 0" (vi 0) (run_agg (count (column "a")) []);
  check_v "count star of empty is 0" (vi 0) (run_agg count_star []);
  check_v "min of empty is null" vnull (run_agg (min_ (column "a")) [])

let test_distinct_aggregates () =
  check_v "count distinct" (vi 2)
    (run_agg
       (agg ~distinct:true Count (Some (column "a")))
       [ vi 1; vi 1; vi 2; vnull ]);
  check_v "sum distinct" (vi 3)
    (run_agg (agg ~distinct:true Sum (Some (column "a")))
       [ vi 1; vi 1; vi 2 ])

let suite =
  [
    Alcotest.test_case "basic evaluation" `Quick test_basic_eval;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "case expression" `Quick test_case_expression;
    Alcotest.test_case "outer references" `Quick test_outer_references;
    Alcotest.test_case "outer shadowing" `Quick test_outer_innermost_shadowing;
    Alcotest.test_case "compile matches eval" `Quick test_compile_matches_eval;
    Alcotest.test_case "conjuncts" `Quick test_conjuncts_roundtrip;
    Alcotest.test_case "column analysis" `Quick test_columns_analysis;
    Alcotest.test_case "type inference" `Quick test_infer;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "aggregates on empty/null input" `Quick
      test_aggregates_empty_and_null;
    Alcotest.test_case "distinct aggregates" `Quick test_distinct_aggregates;
  ]

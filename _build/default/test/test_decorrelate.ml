(* Tests for the decorrelation rule (Galindo-Legaria & Joshi), which
   turns the paper's verbatim Section 2 correlated SQL into the
   groupby + join form SQL Server would run. *)

open Support

let cat = lazy (Tpch_gen.catalog ~msf:0.1 ())

let count_applies plan =
  Plan.fold
    (fun acc p -> match p with Plan.Apply _ -> acc + 1 | _ -> acc)
    0 plan

let bind cat src =
  Sql_binder.bind_query cat (Sql_parser.parse_query_string src)

let test_fires_on_q2_correlated () =
  let cat = Lazy.force cat in
  let plan = bind cat Workloads.q2_correlated in
  Alcotest.(check bool) "correlated plan contains applies" true
    (count_applies plan > 0);
  let optimized = (Optimizer.optimize cat plan).Optimizer.plan in
  Alcotest.(check int) "all applies decorrelated" 0
    (count_applies optimized);
  Alcotest.(check bool) "results preserved" true
    (Relation.equal_as_multiset
       (Executor.run cat plan)
       (Executor.run cat optimized))

let test_fires_on_q3_correlated () =
  let cat = Lazy.force cat in
  let plan = bind cat (Workloads.q3_correlated ()) in
  let optimized = (Optimizer.optimize cat plan).Optimizer.plan in
  Alcotest.(check int) "all applies decorrelated" 0
    (count_applies optimized);
  Alcotest.(check bool) "results preserved" true
    (Relation.equal_as_multiset
       (Executor.run cat plan)
       (Executor.run cat optimized))

let test_simple_correlated_average () =
  let cat = mini_catalog () in
  let src =
    "select p_name from part p1 where p_retailprice > (select \
     avg(p_retailprice) from part where p_size = p1.p_size)"
  in
  let plan = bind cat src in
  match Optimizer.force_rule "decorrelate-scalar-agg" cat plan with
  | None -> Alcotest.fail "rule did not fire"
  | Some plan' ->
      Alcotest.(check int) "apply removed" 0 (count_applies plan');
      check_rel "same rows" (Reference.run cat plan)
        (Executor.run cat plan')

let test_does_not_fire_without_null_rejection () =
  let cat = mini_catalog () in
  (* the predicate tests IS NULL on the aggregate: an inner join would
     wrongly drop outer rows whose group is empty *)
  let src =
    "select p_name from part p1 where (select avg(p_retailprice) from \
     part where p_size = p1.p_size and p_retailprice > 100) is null"
  in
  let plan = bind cat src in
  match Optimizer.force_rule "decorrelate-scalar-agg" cat plan with
  | None -> ()
  | Some _ -> Alcotest.fail "rule fired on a null-sensitive predicate"

let test_does_not_fire_inside_pgq () =
  (* a per-group query's uncorrelated scalar subquery has no correlation
     equalities: the rule must leave the R7 shape alone *)
  let cat = mini_catalog () in
  let plan =
    bind cat
      "select gapply(select * from g where (select avg(p_retailprice) \
       from g) > 22) from partsupp, part where ps_partkey = p_partkey \
       group by ps_suppkey : g"
  in
  match Optimizer.force_rule "decorrelate-scalar-agg" cat plan with
  | None -> ()
  | Some _ -> Alcotest.fail "rule fired inside a per-group query"

let test_preserves_empty_group_drops () =
  (* null-rejecting comparison: suppliers with no cheap parts must not
     appear — both before and after the rewrite *)
  let cat = mini_catalog () in
  let src =
    "select s_name from supplier s1 where 5.0 < (select \
     sum(p_retailprice) from partsupp, part where p_partkey = ps_partkey \
     and ps_suppkey = s1.s_suppkey)"
  in
  let plan = bind cat src in
  match Optimizer.force_rule "decorrelate-scalar-agg" cat plan with
  | None -> Alcotest.fail "rule did not fire"
  | Some plan' ->
      let before = Reference.run cat plan in
      (* Initech supplies nothing: its sum is NULL, rejected by '<' *)
      Alcotest.(check int) "2 suppliers" 2 (Relation.cardinality before);
      check_rel "rewrite agrees" before (Executor.run cat plan')

let suite =
  [
    Alcotest.test_case "Q2 correlated decorrelates fully" `Quick
      test_fires_on_q2_correlated;
    Alcotest.test_case "Q3 correlated decorrelates fully" `Quick
      test_fires_on_q3_correlated;
    Alcotest.test_case "simple correlated average" `Quick
      test_simple_correlated_average;
    Alcotest.test_case "needs a null-rejecting predicate" `Quick
      test_does_not_fire_without_null_rejection;
    Alcotest.test_case "leaves per-group queries alone" `Quick
      test_does_not_fire_inside_pgq;
    Alcotest.test_case "empty groups dropped identically" `Quick
      test_preserves_empty_group_drops;
  ]

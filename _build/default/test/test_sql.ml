(* SQL layer tests: lexer, parser, binder, and end-to-end execution of
   the paper's queries in both formulations (with and without gapply),
   which must agree. *)

open Support

let cat () = mini_catalog ()

let parse = Sql_parser.parse_statement

let bind_run cat src =
  match Sql_binder.bind_statement cat (parse src) with
  | Sql_binder.Bound_query p -> run_checked ~msg:src cat p
  | _ -> Alcotest.failf "expected a query: %s" src

let bind_plan cat src =
  match Sql_binder.bind_statement cat (parse src) with
  | Sql_binder.Bound_query p -> p
  | _ -> Alcotest.failf "expected a query: %s" src

(* ---------- lexer ---------- *)

let test_lexer_basics () =
  let toks =
    List.map (fun t -> t.Sql_token.token)
      (Sql_lexer.tokenize "SELECT a.b, 'it''s', 3.5, 42 <> <= >= || : -- c\n*")
  in
  Alcotest.(check int) "token count" 17 (List.length toks);
  Alcotest.(check bool) "keyword lowercased" true
    (List.hd toks = Sql_token.Ident "select");
  Alcotest.(check bool) "string unescaped" true
    (List.mem (Sql_token.Str_lit "it's") toks);
  Alcotest.(check bool) "float" true (List.mem (Sql_token.Float_lit 3.5) toks);
  Alcotest.(check bool) "colon for gapply" true
    (List.mem Sql_token.Colon toks)

let test_lexer_comments () =
  let toks = Sql_lexer.tokenize "/* block\ncomment */ select -- eol\n 1" in
  Alcotest.(check int) "only select, 1, eof" 3 (List.length toks)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Sql_lexer.tokenize "'abc");
       false
     with Errors.Parse_error _ -> true);
  Alcotest.(check bool) "stray char" true
    (try
       ignore (Sql_lexer.tokenize "select #");
       false
     with Errors.Parse_error _ -> true)

(* ---------- parser ---------- *)

let roundtrip src =
  let q1 = Sql_parser.parse_query_string src in
  let printed = Sql_ast.query_to_string q1 in
  let q2 = Sql_parser.parse_query_string printed in
  Alcotest.(check string)
    ("parse/print roundtrip stable for: " ^ src)
    printed
    (Sql_ast.query_to_string q2)

let test_parser_roundtrips () =
  List.iter roundtrip
    [
      "select a, b as c from t where x = 1 and y > 2.5 or not z < 3";
      "select * from t1, t2 where t1.a = t2.b order by a desc, b";
      "select count(*), avg(x), count(distinct y) from t group by k having \
       count(*) > 1";
      "select case when a > 1 then 'x' else 'y' end from t";
      "select a from t where exists (select b from u where u.k = t.k)";
      "select a from t where x >= (select avg(x) from u)";
      "select a from t where a is not null and b is null";
      "select gapply(select x from g) from t group by k : g";
      "select gapply(select x from g) as (c1) from t group by k, j : g";
      "select a from (select b as a from u) as v";
      "select a || 'x' from t where not exists (select 1 from u)";
      "select a from t where a in (select b from u) and a not in (select \
       c from v)";
      "select a from t where a between 1 and 5 or a not between 8 and 9";
    ]

let test_parser_union_order () =
  match
    Sql_parser.parse_query_string
      "(select a from t union all select b from u) order by a"
  with
  | Sql_ast.Order_by (Sql_ast.Union_all _, _) -> ()
  | _ -> Alcotest.fail "expected order-by over union"

let test_parser_gapply_form () =
  match
    Sql_parser.parse_query_string
      "select gapply(select x from g) from t group by a, b : g"
  with
  | Sql_ast.Select { Sql_ast.items = [ Sql_ast.Item_gapply _ ];
                     group_by = [ (None, "a"); (None, "b") ];
                     group_var = Some "g"; _ } ->
      ()
  | _ -> Alcotest.fail "unexpected gapply parse"

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try
           ignore (parse src);
           false
         with Errors.Parse_error _ -> true))
    [
      "select from t";
      "select a from t where";
      "select a form t";
      "select a from t group by";
      "select unknown_fn(a) from t";
      "select a from t; extra";
    ]

let test_parse_ddl () =
  match
    parse
      "create table t (a int primary key, b varchar, c float, foreign key \
       (b) references u (k))"
  with
  | Sql_ast.Stmt_create_table ("t", cols, constraints) ->
      Alcotest.(check int) "3 columns" 3 (List.length cols);
      Alcotest.(check int) "2 constraints" 2 (List.length constraints)
  | _ -> Alcotest.fail "bad create table parse"

let test_parse_script () =
  let stmts =
    Sql_parser.parse_script
      "create table t (a int); insert into t values (1), (2); select a \
       from t;"
  in
  Alcotest.(check int) "3 statements" 3 (List.length stmts)

(* ---------- binder basics ---------- *)

let test_ddl_and_query_end_to_end () =
  let cat = Catalog.create () in
  let exec src = ignore (Sql_binder.bind_statement cat (parse src)) in
  exec "create table t (a int, b varchar)";
  exec "insert into t values (1, 'x'), (2, 'y'), (-3, null)";
  let r = bind_run cat "select a from t where b is not null" in
  Alcotest.(check int) "two non-null rows" 2 (Relation.cardinality r);
  let r = bind_run cat "select a + 1 as a1 from t where a < 0" in
  check_rows "negative literal inserted" [ [ vi (-2) ] ] r

let test_binder_rejects_unknowns () =
  let cat = cat () in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (bind_plan cat src);
           false
         with Errors.Name_error _ | Errors.Plan_error _ -> true))
    [
      "select nope from part";
      "select p_name from nope";
      "select p_partkey from part, partsupp where ps_suppkey = ambiguous";
      "select s_suppkey from supplier, supplier";
      "select gapply(select 1 from g), p_name from part group by p_size : g";
    ]

let test_binder_scalar_aggregate () =
  let cat = cat () in
  check_rows "overall average"
    [ [ vf 25. ] ]
    (bind_run cat "select avg(p_retailprice) from part")

let test_binder_group_by_having () =
  let cat = cat () in
  check_rows "group by with having"
    [ [ vi 1; vi 3 ] ]
    (bind_run cat
       "select ps_suppkey, count(*) from partsupp group by ps_suppkey \
        having count(*) > 2")

let test_binder_arith_over_aggregates () =
  let cat = cat () in
  check_rows "aggregate arithmetic"
    [ [ vf 50. ] ]
    (bind_run cat
       "select max(p_retailprice) + min(p_retailprice) from part")

let test_binder_exists_correlated () =
  let cat = cat () in
  check_rows "suppliers with a part over 25"
    [ [ vs "Acme" ]; [ vs "Globex" ] ]
    (bind_run cat
       "select s_name from supplier where exists (select 1 from partsupp, \
        part where ps_partkey = p_partkey and ps_suppkey = s_suppkey and \
        p_retailprice > 25)")

let test_binder_not_exists () =
  let cat = cat () in
  check_rows "supplier without parts"
    [ [ vs "Initech" ] ]
    (bind_run cat
       "select s_name from supplier where not exists (select 1 from \
        partsupp where ps_suppkey = s_suppkey)")

let test_binder_scalar_subquery_where () =
  let cat = cat () in
  check_rows "parts above global average"
    [ [ vs "gear" ]; [ vs "cog" ] ]
    (bind_run cat
       "select p_name from part where p_retailprice > (select \
        avg(p_retailprice) from part)")

let test_binder_scalar_subquery_select () =
  let cat = cat () in
  check_rows "select-list subquery"
    [ [ vi 1; vf 25. ]; [ vi 2; vf 25. ]; [ vi 3; vf 25. ]; [ vi 4; vf 25. ] ]
    (bind_run cat
       "select p_partkey, (select avg(p_retailprice) from part) as gavg \
        from part")

let test_binder_derived_table () =
  let cat = cat () in
  check_rows "derived table with column list"
    [ [ vi 1; vi 3 ]; [ vi 2; vi 2 ] ]
    (bind_run cat
       "select k, n from (select ps_suppkey, count(*) from partsupp group \
        by ps_suppkey) as tmp(k, n)")

let test_binder_order_by_desc () =
  let cat = cat () in
  let r =
    bind_run cat "select p_name from part order by p_retailprice desc"
  in
  Alcotest.(check string) "most expensive first" "cog"
    (Value.to_string (Tuple.get (List.hd (Relation.rows r)) 0))

let test_binder_distinct () =
  let cat = cat () in
  check_rows "distinct brands"
    [ [ vs "Brand#A" ]; [ vs "Brand#B" ] ]
    (bind_run cat "select distinct p_brand from part")

let test_binder_fk_annotation () =
  let cat = cat () in
  let plan =
    bind_plan cat
      "select s_name from partsupp, supplier where ps_suppkey = s_suppkey"
  in
  let found =
    Plan.fold
      (fun acc p ->
        match p with
        | Plan.Join { fk = Some Plan.Left_to_right; _ } -> acc + 1
        | _ -> acc)
      0 plan
  in
  Alcotest.(check int) "FK join annotated" 1 found

let test_binder_in_subquery () =
  let cat = cat () in
  check_rows "IN subquery"
    [ [ vs "Acme" ]; [ vs "Globex" ] ]
    (bind_run cat
       "select s_name from supplier where s_suppkey in (select ps_suppkey \
        from partsupp)");
  check_rows "NOT IN subquery"
    [ [ vs "Initech" ] ]
    (bind_run cat
       "select s_name from supplier where s_suppkey not in (select \
        ps_suppkey from partsupp)")

let test_binder_in_correlated () =
  let cat = cat () in
  (* parts supplied by a supplier that also supplies part 4 *)
  check_rows "correlated IN"
    [ [ vi 2 ]; [ vi 4 ] ]
    (bind_run cat
       "select p_partkey from part where p_partkey in (select ps_partkey \
        from partsupp where ps_suppkey = 2)")

let test_binder_between () =
  let cat = cat () in
  check_rows "BETWEEN"
    [ [ vs "nut" ]; [ vs "gear" ] ]
    (bind_run cat
       "select p_name from part where p_retailprice between 15.0 and 35.0");
  check_rows "NOT BETWEEN"
    [ [ vs "bolt" ]; [ vs "cog" ] ]
    (bind_run cat
       "select p_name from part where p_retailprice not between 15.0 and \
        35.0")

let test_binder_case_expression () =
  let cat = cat () in
  check_rows "case over price"
    [ [ vs "cheap" ]; [ vs "cheap" ]; [ vs "costly" ]; [ vs "costly" ] ]
    (bind_run cat
       "select case when p_retailprice <= 20 then 'cheap' else 'costly' \
        end as bucket from part")

(* ---------- the gapply syntax ---------- *)

let test_gapply_basic () =
  let cat = cat () in
  check_rows "per-supplier min via gapply"
    [ [ vi 1; vf 10. ]; [ vi 2; vf 20. ] ]
    (bind_run cat
       "select gapply(select min(p_retailprice) from g) from partsupp, \
        part where ps_partkey = p_partkey group by ps_suppkey : g")

let test_gapply_as_columns () =
  let cat = cat () in
  let r =
    bind_run cat
      "select gapply(select min(p_retailprice) from g) as (cheapest) from \
       partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g"
  in
  Alcotest.(check (list string)) "renamed output"
    [ "ps_suppkey"; "cheapest" ]
    (Schema.names (Relation.schema r))

let test_gapply_produces_r7_shape () =
  let cat = cat () in
  let plan =
    bind_plan cat
      "select gapply(select * from g where (select avg(p_retailprice) \
       from g) > 22) from partsupp, part where ps_partkey = p_partkey \
       group by ps_suppkey : g"
  in
  match Optimizer.force_rule "group-selection-aggregate" cat plan with
  | Some _ -> ()
  | None ->
      Alcotest.fail
        "SQL binding did not produce the canonical aggregate-selection \
         shape"

let test_gapply_produces_r6_shape () =
  let cat = cat () in
  let plan =
    bind_plan cat
      "select gapply(select * from g where exists (select * from g where \
       p_retailprice > 35)) from partsupp, part where ps_partkey = \
       p_partkey group by ps_suppkey : g"
  in
  match Optimizer.force_rule "group-selection-exists" cat plan with
  | Some _ -> ()
  | None ->
      Alcotest.fail
        "SQL binding did not produce the canonical exists-selection shape"

(* ---------- the paper's queries, both formulations ---------- *)

let q1_without_gapply =
  "(select ps_suppkey, p_name, p_retailprice, null as avgprice from \
   partsupp, part where ps_partkey = p_partkey union all select \
   ps_suppkey, null, null, avg(p_retailprice) from partsupp, part where \
   ps_partkey = p_partkey group by ps_suppkey) order by ps_suppkey"

let q1_with_gapply =
  "select gapply(select p_name, p_retailprice, null as avgprice from \
   tmpsupp union all select null, null, avg(p_retailprice) from tmpsupp) \
   from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : \
   tmpsupp"

let q2_without_gapply =
  "(select ps_suppkey, count(*) as cnt_above, null as cnt_below from \
   partsupp ps1, part where p_partkey = ps_partkey and p_retailprice >= \
   (select avg(p_retailprice) from partsupp, part where p_partkey = \
   ps_partkey and ps_suppkey = ps1.ps_suppkey) group by ps_suppkey union \
   all select ps_suppkey, null, count(*) from partsupp ps2, part where \
   p_partkey = ps_partkey and p_retailprice < (select avg(p_retailprice) \
   from partsupp, part where p_partkey = ps_partkey and ps_suppkey = \
   ps2.ps_suppkey) group by ps_suppkey) order by ps_suppkey"

let q2_with_gapply =
  "select gapply(select count(*) as cnt_above, null as cnt_below from \
   tmpsupp where p_retailprice >= (select avg(p_retailprice) from \
   tmpsupp) union all select null, count(*) from tmpsupp where \
   p_retailprice < (select avg(p_retailprice) from tmpsupp)) from \
   partsupp, part where ps_partkey = p_partkey group by ps_suppkey : \
   tmpsupp"

let test_q1_formulations_agree () =
  let cat = cat () in
  let without = bind_run cat q1_without_gapply in
  let with_g = bind_run cat q1_with_gapply in
  check_rel "Q1 with = without" without with_g;
  check_rows "Q1 expected"
    [
      [ vi 1; vs "bolt"; vf 10.; vnull ];
      [ vi 1; vs "nut"; vf 20.; vnull ];
      [ vi 1; vs "gear"; vf 30.; vnull ];
      [ vi 1; vnull; vnull; vf 20. ];
      [ vi 2; vs "nut"; vf 20.; vnull ];
      [ vi 2; vs "cog"; vf 40.; vnull ];
      [ vi 2; vnull; vnull; vf 30. ];
    ]
    with_g

let test_q2_formulations_agree () =
  let cat = cat () in
  let without = bind_run cat q2_without_gapply in
  let with_g = bind_run cat q2_with_gapply in
  check_rel "Q2 with = without" without with_g;
  check_rows "Q2 expected"
    [
      [ vi 1; vi 2; vnull ];
      [ vi 1; vnull; vi 1 ];
      [ vi 2; vi 1; vnull ];
      [ vi 2; vnull; vi 1 ];
    ]
    with_g

let q4_without_gapply =
  "select tmp.ps_suppkey, tmp.p_size, p_name, p_retailprice from (select \
   ps_suppkey, p_size, avg(p_retailprice) from partsupp, part where \
   p_partkey = ps_partkey group by ps_suppkey, p_size) as \
   tmp(ps_suppkey, p_size, avgprice), partsupp, part where ps_partkey = \
   p_partkey and partsupp.ps_suppkey = tmp.ps_suppkey and part.p_size = \
   tmp.p_size and p_retailprice > tmp.avgprice order by tmp.ps_suppkey"

let q4_with_gapply =
  "select gapply(select p_name, p_retailprice from tmpsupp where \
   p_retailprice > (select avg(p_retailprice) from tmpsupp)) from \
   partsupp, part where ps_partkey = p_partkey group by ps_suppkey, \
   p_size : tmpsupp"

let test_q4_formulations_agree () =
  let cat = cat () in
  let without = bind_run cat q4_without_gapply in
  let with_g = bind_run cat q4_with_gapply in
  (* supplier 1 size 1: parts 10, 30 (avg 20) -> gear above;
     supplier 2 size 2: parts 20, 40 (avg 30) -> cog above *)
  check_rows "Q4 expected"
    [ [ vi 1; vi 1; vs "gear"; vf 30. ]; [ vi 2; vi 2; vs "cog"; vf 40. ] ]
    with_g;
  check_rel "Q4 with = without" without with_g

let test_optimize_sql_plans_preserve_semantics () =
  let cat = cat () in
  List.iter
    (fun src ->
      let plan = bind_plan cat src in
      let { Optimizer.plan = plan'; _ } = Optimizer.optimize cat plan in
      check_rel ("optimized " ^ src) (Reference.run cat plan)
        (Reference.run cat plan'))
    [ q1_with_gapply; q2_with_gapply; q4_with_gapply; q1_without_gapply ]

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser roundtrips" `Quick test_parser_roundtrips;
    Alcotest.test_case "parser union/order precedence" `Quick
      test_parser_union_order;
    Alcotest.test_case "parser gapply form" `Quick test_parser_gapply_form;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_errors;
    Alcotest.test_case "parser DDL" `Quick test_parse_ddl;
    Alcotest.test_case "parser scripts" `Quick test_parse_script;
    Alcotest.test_case "DDL + query end to end" `Quick
      test_ddl_and_query_end_to_end;
    Alcotest.test_case "binder rejects unknowns" `Quick
      test_binder_rejects_unknowns;
    Alcotest.test_case "scalar aggregate" `Quick test_binder_scalar_aggregate;
    Alcotest.test_case "group by + having" `Quick test_binder_group_by_having;
    Alcotest.test_case "aggregate arithmetic" `Quick
      test_binder_arith_over_aggregates;
    Alcotest.test_case "correlated EXISTS" `Quick test_binder_exists_correlated;
    Alcotest.test_case "NOT EXISTS" `Quick test_binder_not_exists;
    Alcotest.test_case "scalar subquery in WHERE" `Quick
      test_binder_scalar_subquery_where;
    Alcotest.test_case "scalar subquery in SELECT" `Quick
      test_binder_scalar_subquery_select;
    Alcotest.test_case "derived table" `Quick test_binder_derived_table;
    Alcotest.test_case "order by desc" `Quick test_binder_order_by_desc;
    Alcotest.test_case "select distinct" `Quick test_binder_distinct;
    Alcotest.test_case "FK join annotation" `Quick test_binder_fk_annotation;
    Alcotest.test_case "IN subquery" `Quick test_binder_in_subquery;
    Alcotest.test_case "correlated IN" `Quick test_binder_in_correlated;
    Alcotest.test_case "BETWEEN" `Quick test_binder_between;
    Alcotest.test_case "case expression" `Quick test_binder_case_expression;
    Alcotest.test_case "gapply basic" `Quick test_gapply_basic;
    Alcotest.test_case "gapply AS columns" `Quick test_gapply_as_columns;
    Alcotest.test_case "gapply yields R7 shape" `Quick
      test_gapply_produces_r7_shape;
    Alcotest.test_case "gapply yields R6 shape" `Quick
      test_gapply_produces_r6_shape;
    Alcotest.test_case "paper Q1: both formulations" `Quick
      test_q1_formulations_agree;
    Alcotest.test_case "paper Q2: both formulations" `Quick
      test_q2_formulations_agree;
    Alcotest.test_case "paper Q4: both formulations" `Quick
      test_q4_formulations_agree;
    Alcotest.test_case "optimizer on SQL plans" `Quick
      test_optimize_sql_plans_preserve_semantics;
  ]

(* Shared fixtures and assertions for the test suite. *)

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.Str s
let vb b = Value.Bool b
let vnull = Value.Null

let row vs = Tuple.of_list vs

let schema cols =
  Schema.of_list
    (List.map (fun (name, ty) -> Schema.column name ty) cols)

let rel cols rows = Relation.make (schema cols) (List.map row rows)

(* ---------- alcotest testables ---------- *)

let value_testable = Alcotest.testable Value.pp Value.equal_total
let truth_testable = Alcotest.testable Truth.pp Truth.equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal

(** Relation equality as multisets (the semantic notion). *)
let relation_testable =
  Alcotest.testable Relation.pp Relation.equal_as_multiset

(** Relation equality including row order (for ORDER BY tests). *)
let relation_ordered_testable =
  Alcotest.testable Relation.pp Relation.equal_as_list

let check_rel msg expected actual =
  Alcotest.check relation_testable msg expected actual

let check_rows msg expected_rows actual =
  (* compare rows only, ignoring schema details *)
  let expected =
    Relation.make (Relation.schema actual) (List.map row expected_rows)
  in
  check_rel msg expected actual

(* ---------- a tiny TPC-H-like fixture ---------- *)

(* 3 suppliers; supplier 1 has parts 1,2,3; supplier 2 has parts 2,4;
   supplier 3 supplies nothing.  Part prices: 10.0, 20.0, 30.0, 40.0. *)
let mini_catalog () =
  let cat = Catalog.create () in
  let supplier =
    Table.create "supplier"
      ~primary_key:[ "s_suppkey" ]
      [ ("s_suppkey", Datatype.Int); ("s_name", Datatype.Str) ]
  in
  Table.insert_all supplier
    [
      row [ vi 1; vs "Acme" ];
      row [ vi 2; vs "Globex" ];
      row [ vi 3; vs "Initech" ];
    ];
  let part =
    Table.create "part"
      ~primary_key:[ "p_partkey" ]
      [
        ("p_partkey", Datatype.Int);
        ("p_name", Datatype.Str);
        ("p_retailprice", Datatype.Float);
        ("p_size", Datatype.Int);
        ("p_brand", Datatype.Str);
      ]
  in
  Table.insert_all part
    [
      row [ vi 1; vs "bolt"; vf 10.; vi 1; vs "Brand#A" ];
      row [ vi 2; vs "nut"; vf 20.; vi 2; vs "Brand#B" ];
      row [ vi 3; vs "gear"; vf 30.; vi 1; vs "Brand#A" ];
      row [ vi 4; vs "cog"; vf 40.; vi 2; vs "Brand#B" ];
    ];
  let partsupp =
    Table.create "partsupp"
      ~primary_key:[ "ps_suppkey"; "ps_partkey" ]
      ~foreign_keys:
        [
          {
            Table.fk_columns = [ "ps_suppkey" ];
            fk_table = "supplier";
            fk_ref_columns = [ "s_suppkey" ];
          };
          {
            Table.fk_columns = [ "ps_partkey" ];
            fk_table = "part";
            fk_ref_columns = [ "p_partkey" ];
          };
        ]
      [ ("ps_suppkey", Datatype.Int); ("ps_partkey", Datatype.Int) ]
  in
  Table.insert_all partsupp
    [
      row [ vi 1; vi 1 ];
      row [ vi 1; vi 2 ];
      row [ vi 1; vi 3 ];
      row [ vi 2; vi 2 ];
      row [ vi 2; vi 4 ];
    ];
  Catalog.add_table cat supplier;
  Catalog.add_table cat part;
  Catalog.add_table cat partsupp;
  cat

let scan cat name = Plan.table_scan ~table:name ~alias:name
                      (Table.schema (Catalog.find_table cat name))

(* ---------- cross-checked execution ---------- *)

(** Run [plan] through the physical executor (both partition strategies)
    and the reference evaluator; assert all three agree and return the
    reference result. *)
let run_checked ?(msg = "exec vs reference") cat plan =
  let reference = Reference.run cat plan in
  let hash =
    Executor.run
      ~config:(Compile.config_with ~partition:Compile.Hash_partition ())
      cat plan
  in
  let sort =
    Executor.run
      ~config:(Compile.config_with ~partition:Compile.Sort_partition ())
      cat plan
  in
  check_rel (msg ^ " (hash partitioning)") reference hash;
  check_rel (msg ^ " (sort partitioning)") reference sort;
  reference

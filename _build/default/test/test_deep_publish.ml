(* Tests for arbitrary-depth publishing: the three-level
   customer -> order -> lineitem view, both strategies, hierarchical
   clustering, and per-level derived aggregates. *)


let cat = lazy (Tpch_gen.catalog ~msf:0.05 ())

let count_elements tag doc =
  let rec go acc = function
    | Xml.Text _ -> acc
    | Xml.Element (t, _, children) ->
        List.fold_left go (if String.equal t tag then acc + 1 else acc)
          children
  in
  go 0 doc

let publish_both cat view =
  let ou =
    Deep_publish.publish ~strategy:Deep_publish.Sorted_outer_union cat view
  in
  let ga =
    Deep_publish.publish ~strategy:Deep_publish.Gapply_pass cat view
  in
  Alcotest.(check bool) "strategies publish the same document" true
    (Xml.equal_unordered ou ga);
  ou

let test_three_level_structure () =
  let cat = Lazy.force cat in
  let doc = publish_both cat Deep_view.customer_orders in
  let customers =
    Table.cardinality (Catalog.find_table cat "customer")
  in
  let orders = Table.cardinality (Catalog.find_table cat "orders") in
  let lineitems = Table.cardinality (Catalog.find_table cat "lineitem") in
  Alcotest.(check int) "all customers" customers
    (count_elements "customer" doc);
  Alcotest.(check int) "all orders" orders (count_elements "order" doc);
  Alcotest.(check int) "all lineitems" lineitems
    (count_elements "lineitem" doc)

let test_derived_aggregates_present () =
  let cat = Lazy.force cat in
  let doc = publish_both cat Deep_view.customer_orders in
  let customers =
    Table.cardinality (Catalog.find_table cat "customer")
  in
  let orders = Table.cardinality (Catalog.find_table cat "orders") in
  Alcotest.(check int) "one order_count per customer" customers
    (count_elements "order_count" doc);
  Alcotest.(check int) "one revenue per order" orders
    (count_elements "revenue" doc);
  Alcotest.(check int) "one line_count per order" orders
    (count_elements "line_count" doc)

let rec find_elements tag doc =
  match doc with
  | Xml.Text _ -> []
  | Xml.Element (t, _, children) ->
      let here = if String.equal t tag then [ doc ] else [] in
      here @ List.concat_map (find_elements tag) children

let text_of = function
  | Xml.Element (_, _, [ Xml.Text s ]) -> s
  | _ -> Alcotest.fail "expected a text element"

let test_revenue_matches_sql () =
  let cat = Lazy.force cat in
  let doc = publish_both cat Deep_view.customer_orders in
  (* total revenue over all orders from the document... *)
  let doc_total =
    List.fold_left
      (fun acc e -> acc +. float_of_string (text_of e))
      0.
      (find_elements "revenue" doc)
  in
  (* ... must equal the SQL total *)
  let sql_total =
    let r =
      Executor.run cat
        (Sql_binder.bind_query cat
           (Sql_parser.parse_query_string
              "select sum(l_extendedprice) from lineitem"))
    in
    match Tuple.get (List.hd (Relation.rows r)) 0 with
    | Value.Float f -> f
    | v -> Alcotest.failf "unexpected %s" (Value.to_string v)
  in
  Alcotest.(check (float 0.5)) "document revenue = SQL revenue" sql_total
    doc_total

let test_nesting_is_correct () =
  let cat = Lazy.force cat in
  let doc = publish_both cat Deep_view.customer_orders in
  (* every lineitem must sit inside an order inside a customer *)
  let rec check_path path = function
    | Xml.Text _ -> ()
    | Xml.Element (tag, _, children) ->
        (if String.equal tag "lineitem" then
           match path with
           | "order" :: "customer" :: _ -> ()
           | _ ->
               Alcotest.failf "lineitem nested under %s"
                 (String.concat "/" path));
        List.iter (check_path (tag :: path)) children
  in
  check_path [] doc

let test_deep_tagger_rejects_unclustered () =
  let cat = Lazy.force cat in
  let plan, enc =
    Deep_publish.outer_union_plan cat Deep_view.customer_orders
  in
  let unordered =
    match plan with Plan.Order_by { input; _ } -> input | p -> p
  in
  let compiled = Compile.plan unordered in
  Alcotest.(check bool) "raises on unclustered stream" true
    (try
       ignore (Deep_publish.tag enc (compiled.Compile.run (Env.make cat)));
       false
     with Errors.Exec_error _ -> true)

let test_encoding_shape () =
  let enc = Deep_publish.build_encoding Deep_view.customer_orders in
  (* 3 element branches + 3 aggregate branches *)
  Alcotest.(check int) "6 branches" 6
    (List.length enc.Deep_publish.e_branches);
  (* key slots: customer(1) + order(1) + lineitem(1) *)
  Alcotest.(check int) "3 key slots" 3
    (List.length enc.Deep_publish.e_key_slots);
  Alcotest.(check int) "node column after keys" 3 enc.Deep_publish.e_node_col

let test_view_validation () =
  let bad =
    {
      Deep_view.root_tag = "r";
      top =
        {
          Deep_view.n_tag = "a";
          n_query = "select 1";
          n_path = [ "x"; "y" ];
          n_own_keys = 2;
          n_fields = [];
          n_aggregates = [];
          n_children =
            [
              {
                Deep_view.n_tag = "b";
                n_query = "select 1";
                n_path = [ "x" ];  (* too short: parent has 2 key cols *)
                n_own_keys = 1;
                n_fields = [];
                n_aggregates = [];
                n_children = [];
              };
            ];
        };
    }
  in
  Alcotest.(check bool) "bad path rejected" true
    (try
       ignore (Deep_view.validate bad);
       false
     with Errors.Plan_error _ -> true)

let suite =
  [
    Alcotest.test_case "three-level structure" `Quick
      test_three_level_structure;
    Alcotest.test_case "derived aggregates at every level" `Quick
      test_derived_aggregates_present;
    Alcotest.test_case "revenue matches SQL" `Quick test_revenue_matches_sql;
    Alcotest.test_case "nesting is correct" `Quick test_nesting_is_correct;
    Alcotest.test_case "deep tagger rejects unclustered input" `Quick
      test_deep_tagger_rejects_unclustered;
    Alcotest.test_case "encoding shape" `Quick test_encoding_shape;
    Alcotest.test_case "view validation" `Quick test_view_validation;
  ]

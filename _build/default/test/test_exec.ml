(* Integration tests: physical operators cross-checked against the
   reference evaluator on the mini TPC-H fixture. *)

open Support
open Expr

let cat = lazy (mini_catalog ())

let partsupp_part cat =
  Plan.join
    (column "ps_partkey" ==^ column "p_partkey")
    (scan cat "partsupp") (scan cat "part")

let test_scan () =
  let cat = Lazy.force cat in
  let r = run_checked cat (scan cat "part") in
  Alcotest.(check int) "4 parts" 4 (Relation.cardinality r)

let test_select () =
  let cat = Lazy.force cat in
  let p =
    Plan.select (column "p_retailprice" >^ float 15.) (scan cat "part")
  in
  let r = run_checked cat p in
  Alcotest.(check int) "3 parts above 15" 3 (Relation.cardinality r)

let test_project_computed () =
  let cat = Lazy.force cat in
  let p =
    Plan.project
      [ (column "p_name", "p_name");
        (column "p_retailprice" *^ float 2., "double_price") ]
      (scan cat "part")
  in
  let r = run_checked cat p in
  Alcotest.(check int) "arity 2" 2 (Schema.arity (Relation.schema r));
  Alcotest.(check string) "computed column name" "double_price"
    (Schema.get (Relation.schema r) 1).Schema.cname

let test_equijoin () =
  let cat = Lazy.force cat in
  let r = run_checked cat (partsupp_part cat) in
  Alcotest.(check int) "5 partsupp-part rows" 5 (Relation.cardinality r)

let test_nonequi_join () =
  let cat = Lazy.force cat in
  (* parts strictly cheaper than another part: theta join *)
  let left = scan cat "part" in
  let right =
    Plan.project
      [ (column "p_partkey", "k2"); (column "p_retailprice", "price2") ]
      (scan cat "part")
  in
  let p = Plan.join (column "p_retailprice" <^ column "price2") left right in
  let r = run_checked cat p in
  (* prices 10,20,30,40: pairs with strictly increasing price = 6 *)
  Alcotest.(check int) "6 theta pairs" 6 (Relation.cardinality r)

let test_join_null_keys_do_not_match () =
  let cat = Catalog.create () in
  let t1 = Table.create "t1" [ ("a", Datatype.Int) ] in
  Table.insert_all t1 [ row [ vi 1 ]; row [ vnull ] ];
  let t2 = Table.create "t2" [ ("b", Datatype.Int) ] in
  Table.insert_all t2 [ row [ vi 1 ]; row [ vnull ] ];
  Catalog.add_table cat t1;
  Catalog.add_table cat t2;
  let p = Plan.join (column "a" ==^ column "b") (scan cat "t1") (scan cat "t2") in
  let r = run_checked cat p in
  Alcotest.(check int) "only non-null keys join" 1 (Relation.cardinality r)

let test_self_join_aliases () =
  let cat = Lazy.force cat in
  let ps1 =
    Plan.table_scan ~table:"partsupp" ~alias:"ps1"
      (Table.schema (Catalog.find_table cat "partsupp"))
  in
  let ps2 =
    Plan.table_scan ~table:"partsupp" ~alias:"ps2"
      (Table.schema (Catalog.find_table cat "partsupp"))
  in
  let p =
    Plan.join
      (column ~qual:"ps1" "ps_partkey" ==^ column ~qual:"ps2" "ps_partkey")
      ps1 ps2
  in
  let r = run_checked cat p in
  (* part 2 is supplied by suppliers 1 and 2: partkey matches = 1+4+1+1 = 7 *)
  Alcotest.(check int) "self join on partkey" 7 (Relation.cardinality r)

let test_group_by () =
  let cat = Lazy.force cat in
  let p =
    Plan.group_by
      [ Expr.col "ps_suppkey" ]
      [ (count_star, "n"); (avg (column "p_retailprice"), "avg_price") ]
      (partsupp_part cat)
  in
  let r = run_checked cat p in
  check_rows "per-supplier aggregates"
    [ [ vi 1; vi 3; vf 20. ]; [ vi 2; vi 2; vf 30. ] ]
    r

let test_group_by_empty_input () =
  let cat = Lazy.force cat in
  let p =
    Plan.group_by
      [ Expr.col "p_size" ]
      [ (count_star, "n") ]
      (Plan.select (column "p_retailprice" >^ float 1000.) (scan cat "part"))
  in
  let r = run_checked cat p in
  Alcotest.(check int) "groupby on empty is empty" 0 (Relation.cardinality r)

let test_scalar_aggregate_empty_input () =
  let cat = Lazy.force cat in
  let p =
    Plan.aggregate
      [ (count_star, "n"); (sum (column "p_retailprice"), "total") ]
      (Plan.select (column "p_retailprice" >^ float 1000.) (scan cat "part"))
  in
  let r = run_checked cat p in
  check_rows "aggregate on empty yields one row" [ [ vi 0; vnull ] ] r

let test_distinct () =
  let cat = Lazy.force cat in
  let p =
    Plan.distinct
      (Plan.project [ (column "p_brand", "p_brand") ] (scan cat "part"))
  in
  let r = run_checked cat p in
  Alcotest.(check int) "2 brands" 2 (Relation.cardinality r)

let test_order_by () =
  let cat = Lazy.force cat in
  let p =
    Plan.order_by
      [ (column "p_retailprice", Plan.Desc) ]
      (scan cat "part")
  in
  let r =
    Executor.run cat p
  in
  let first = List.hd (Relation.rows r) in
  Alcotest.check value_testable "most expensive first" (vf 40.)
    (Tuple.get first 2);
  ignore (run_checked cat p)

let test_union_all_keeps_duplicates () =
  let cat = Lazy.force cat in
  let b = Plan.project [ (column "s_suppkey", "k") ] (scan cat "supplier") in
  let p = Plan.union_all [ b; b ] in
  let r = run_checked cat p in
  Alcotest.(check int) "6 rows with duplicates" 6 (Relation.cardinality r)

let test_apply_cross () =
  let cat = Lazy.force cat in
  (* for each supplier, its parts via a correlated inner query *)
  let inner =
    Plan.select
      (column "ps_suppkey" ==^ outer "s_suppkey")
      (scan cat "partsupp")
  in
  let p = Plan.apply (scan cat "supplier") inner in
  let r = run_checked cat p in
  Alcotest.(check int) "5 supplier-partsupp pairs" 5 (Relation.cardinality r)

let test_apply_exists () =
  let cat = Lazy.force cat in
  (* suppliers supplying some part priced above 25 *)
  let inner =
    Plan.exists
      (Plan.select
         ((column "ps_suppkey" ==^ outer "s_suppkey")
         &&& (column "p_retailprice" >^ float 25.))
         (partsupp_part cat))
  in
  let p = Plan.apply (scan cat "supplier") inner in
  let r = run_checked cat p in
  check_rows "suppliers with expensive part"
    [ [ vi 1; vs "Acme" ]; [ vi 2; vs "Globex" ] ]
    r

let test_apply_not_exists () =
  let cat = Lazy.force cat in
  let inner =
    Plan.exists ~negated:true
      (Plan.select
         (column "ps_suppkey" ==^ outer "s_suppkey")
         (scan cat "partsupp"))
  in
  let p = Plan.apply (scan cat "supplier") inner in
  let r = run_checked cat p in
  check_rows "supplier with no parts" [ [ vi 3; vs "Initech" ] ] r

let test_apply_scalar_subquery () =
  let cat = Lazy.force cat in
  (* for each part, pair it with the overall average price, then filter *)
  let inner = Plan.aggregate [ (avg (column "p_retailprice"), "avg_all") ]
      (scan cat "part")
  in
  let p =
    Plan.select
      (column "p_retailprice" >^ column "avg_all")
      (Plan.apply (scan cat "part") inner)
  in
  let r = run_checked cat p in
  (* avg = 25; parts above: 30, 40 *)
  Alcotest.(check int) "2 parts above average" 2 (Relation.cardinality r)

let test_props_schema_inference () =
  let cat = Lazy.force cat in
  let p =
    Plan.group_by
      [ Expr.col "ps_suppkey" ]
      [ (avg (column "p_retailprice"), "avg_price") ]
      (partsupp_part cat)
  in
  let s = Props.schema_of p in
  Alcotest.(check (list string)) "output columns"
    [ "ps_suppkey"; "avg_price" ] (Schema.names s);
  Alcotest.(check string) "avg type" "FLOAT"
    (Datatype.to_string (Schema.get s 1).Schema.ctype)

let suite =
  [
    Alcotest.test_case "table scan" `Quick test_scan;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "project with computed columns" `Quick
      test_project_computed;
    Alcotest.test_case "equi hash join" `Quick test_equijoin;
    Alcotest.test_case "theta (nested-loop) join" `Quick test_nonequi_join;
    Alcotest.test_case "null join keys" `Quick test_join_null_keys_do_not_match;
    Alcotest.test_case "self join with aliases" `Quick test_self_join_aliases;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "group by on empty input" `Quick
      test_group_by_empty_input;
    Alcotest.test_case "scalar aggregate on empty input" `Quick
      test_scalar_aggregate_empty_input;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "order by desc" `Quick test_order_by;
    Alcotest.test_case "union all duplicates" `Quick
      test_union_all_keeps_duplicates;
    Alcotest.test_case "apply (cross)" `Quick test_apply_cross;
    Alcotest.test_case "apply exists" `Quick test_apply_exists;
    Alcotest.test_case "apply not exists" `Quick test_apply_not_exists;
    Alcotest.test_case "apply scalar subquery" `Quick
      test_apply_scalar_subquery;
    Alcotest.test_case "schema inference" `Quick test_props_schema_inference;
  ]

(** Covering-range analysis (paper Section 4.1, Theorem 1).

    The covering range of a per-group query is a selection condition over
    the group relation such that running the query on the covered subset
    of any group is equivalent to running it on the whole group.  It
    drives the selection-before-GApply rule (together with
    {!Empty_on_empty}). *)

type range =
  | Whole                (** the query may need every row of the group *)
  | Cond of Expr.t       (** rows satisfying this condition suffice *)

type analysis = {
  range : range;
  transparent : string list;
      (** group columns that reach the analysed node unchanged *)
  complicated : bool;
      (** subtree contains apply / groupby / aggregate / GApply *)
}

val analyze : var:string -> Plan.t -> analysis

val of_pgq : var:string -> Plan.t -> range
(** Covering range of a per-group query over variable [var].  The result
    is sound under weakening: dropping inexpressible conditions only
    enlarges the covered subset (see Theorem 1). *)

(** The emptyOnEmpty analysis (paper Section 4.1): does a per-group
    query produce an empty result whenever its group is empty?

    This is the side condition of the selection-before-GApply rule:
    pushing the covering range into the outer query means the per-group
    query is never invoked on an emptied group, so PGQ(empty) = empty
    must hold for the rewrite to be exact (e.g. count-star of the empty
    group is a row, not nothing). *)

val check : var:string -> Plan.t -> bool
(** Sound: [true] implies the query really is empty on the empty group
    (verified by a qcheck property against the reference evaluator). *)

(* GApply vs. joins (paper Section 4.3).

   - invariant grouping (Theorem 2): push a GApply below a foreign-key
     join when the join's left side already carries the grouping columns
     and the gp-eval columns, and the left-side join columns are grouping
     columns.  The per-group query is *adapted* by removing the columns
     that are no longer available (they re-attach through the join).

   - pull GApply above a join (the rule of Galindo-Legaria & Joshi [12]
     referenced by the paper): the inverse move, valid under the same
     foreign-key condition; the right side's columns are constant within
     a group, so the adapted per-group query re-attaches them with a
     distinct-projection Apply. *)

open Rule_util

module Sset = Set.Make (String)

(* ---------- adaptation of the per-group query (Section 4.3) ---------- *)

(* Remove from all project lists every column that references a name in
   [dropped]; fail (None) if a projection would become empty or a
   non-projection operator references a dropped column. *)
let adapt_pgq ~var ~new_schema ~dropped pgq =
  let refs_dropped e =
    List.exists
      (fun (r : Expr.col_ref) -> Sset.mem r.Expr.name dropped)
      (Expr.columns e)
  in
  let agg_refs_dropped (a : Expr.agg) =
    match a.Expr.arg with None -> false | Some e -> refs_dropped e
  in
  let exception Unavailable in
  let rec go p =
    match p with
    | Plan.Group_scan g when String.equal g.var var ->
        Plan.Group_scan { g with schema = new_schema }
    | Plan.Group_scan _ | Plan.Table_scan _ -> p
    | Plan.Select { pred; input } ->
        if refs_dropped pred then raise Unavailable
        else Plan.select pred (go input)
    | Plan.Project { items; input } ->
        let kept = List.filter (fun (e, _) -> not (refs_dropped e)) items in
        if kept = [] then raise Unavailable
        else Plan.project kept (go input)
    | Plan.Distinct input -> Plan.distinct (go input)
    | Plan.Alias { alias; input } -> Plan.alias alias (go input)
    | Plan.Order_by { keys; input } ->
        if List.exists (fun (e, _) -> refs_dropped e) keys then
          raise Unavailable
        else Plan.order_by keys (go input)
    | Plan.Group_by { keys; aggs; input } ->
        if
          List.exists
            (fun (r : Expr.col_ref) -> Sset.mem r.Expr.name dropped)
            keys
          || List.exists (fun (a, _) -> agg_refs_dropped a) aggs
        then raise Unavailable
        else Plan.group_by keys aggs (go input)
    | Plan.Aggregate { aggs; input } ->
        if List.exists (fun (a, _) -> agg_refs_dropped a) aggs then
          raise Unavailable
        else Plan.aggregate aggs (go input)
    | Plan.Exists { input; negated } -> Plan.exists ~negated (go input)
    | Plan.Apply { outer; inner } -> Plan.apply (go outer) (go inner)
    | Plan.Union_all branches -> Plan.union_all (List.map go branches)
    | Plan.Join _ | Plan.G_apply _ -> raise Unavailable
  in
  match go pgq with p -> Some p | exception Unavailable -> None

(* Union-branch alignment check: adapted branches must agree on output
   names (dropping different columns per branch would misalign them). *)
let union_branches_aligned pgq =
  try
    ignore (Props.validate pgq);
    true
  with _ -> false

(* ---------- invariant grouping: push GApply below an FK join ---------- *)

let invariant_grouping =
  make ~name:"invariant-grouping" ~cost_based:true
    ~description:
      "push GApply below a foreign-key join whose left side has the \
       grouping and gp-eval columns (Theorem 2)"
    (fun _cat plan ->
      match plan with
      | Plan.G_apply
          {
            gcols;
            var;
            outer =
              Plan.Join
                ({ pred; fk = Some Plan.Left_to_right; left; right } as j);
            pgq;
            _;
          } -> (
          match (try_schema left, try_schema right) with
          | Some left_schema, Some right_schema -> (
              let left_names = Schema.names left_schema in
              let right_names = Schema.names right_schema in
              let join_schema = Schema.concat left_schema right_schema in
              let join_names = Schema.names join_schema in
              if not (no_duplicates join_names) then None
              else if
                (* 1. grouping columns live on the left side *)
                not
                  (List.for_all
                     (fun (r : Expr.col_ref) ->
                       List.mem r.Expr.name left_names)
                     gcols)
              then None
              else if
                (* 1b. gp-eval columns live on the left side *)
                not
                  (List.for_all
                     (fun n -> List.mem n left_names)
                     (Gp_eval.of_pgq ~group_schema:join_schema pgq))
              then None
              else if
                (* 2. every left-side join column is a grouping column *)
                not
                  (let gcol_names = names_of_refs gcols in
                   List.for_all
                     (fun (r : Expr.col_ref) ->
                       (not (List.mem r.Expr.name left_names))
                       || List.mem r.Expr.name gcol_names)
                     (Expr.columns pred))
              then None
              else
                let original_out_names =
                  names_of_refs gcols @ Schema.names (Props.schema_of pgq)
                in
                if not (no_duplicates original_out_names) then None
                else
                  let dropped = Sset.of_list right_names in
                  match
                    adapt_pgq ~var ~new_schema:left_schema ~dropped pgq
                  with
                  | None -> None
                  | Some adapted when not (union_branches_aligned adapted) ->
                      None
                  | Some adapted ->
                      let inner_ga =
                        Plan.g_apply ~gcols ~var ~outer:left ~pgq:adapted
                      in
                      let adapted_out_names =
                        try
                          names_of_refs gcols
                          @ Schema.names (Props.schema_of adapted)
                        with _ -> []
                      in
                      if adapted_out_names = [] then None
                      else if
                        (* columns that disappeared must be recoverable
                           from the right side by name *)
                        not
                          (List.for_all
                             (fun n ->
                               List.mem n adapted_out_names
                               || List.mem n right_names)
                             original_out_names)
                      then None
                      else
                        let new_join =
                          Plan.Join { j with left = inner_ga; right }
                        in
                        let right_source name =
                          let i = Schema.find name right_schema in
                          (Schema.get right_schema i).Schema.source
                        in
                        let items =
                          List.map
                            (fun n ->
                              if List.mem n adapted_out_names then
                                (Expr.column n, n)
                              else
                                ( Expr.Col (Expr.col ?qual:(right_source n) n),
                                  n ))
                            original_out_names
                        in
                        Some (Plan.project items new_join))
          | _ -> None)
      | _ -> None)

(* ---------- pull GApply above an FK join ---------- *)

let pull_above_join =
  make ~name:"pull-gapply-above-join" ~cost_based:true
    ~description:
      "pull GApply above a foreign-key join (Galindo-Legaria & Joshi); \
       the right side's columns are re-attached inside the per-group \
       query"
    (fun _cat plan ->
      match plan with
      | Plan.Join
          ({
             pred;
             fk = Some Plan.Left_to_right;
             left = Plan.G_apply { gcols; var; outer; pgq; _ };
             right;
           } as j) -> (
          match (try_schema outer, try_schema right) with
          | Some outer_schema, Some right_schema -> (
              let gcol_names = names_of_refs gcols in
              let outer_names = Schema.names outer_schema in
              let right_names = Schema.names right_schema in
              let new_outer_schema =
                Schema.concat outer_schema right_schema
              in
              if not (no_duplicates (outer_names @ right_names)) then None
              else if
                (* the join predicate over the GApply output may only
                   touch grouping columns (left) and right columns *)
                not
                  (List.for_all
                     (fun (r : Expr.col_ref) ->
                       List.mem r.Expr.name gcol_names
                       || List.mem r.Expr.name right_names)
                     (Expr.columns pred))
                || Expr.references_outer pred
              then None
              else
                let new_outer = Plan.Join { j with left = outer; right } in
                let widened_pgq =
                  Props.retarget_group_scans ~var ~schema:new_outer_schema
                    pgq
                in
                let right_items =
                  List.map
                    (fun (c : Schema.column) ->
                      ( Expr.Col
                          (Expr.col ?qual:c.Schema.source c.Schema.cname),
                        c.Schema.cname ))
                    (Schema.to_list right_schema)
                in
                let attach_right =
                  Plan.distinct
                    (Plan.project right_items
                       (Plan.group_scan ~var new_outer_schema))
                in
                let new_pgq = Plan.apply widened_pgq attach_right in
                match
                  (* sanity: the rewritten plan must still resolve *)
                  try_schema
                    (Plan.g_apply ~gcols ~var ~outer:new_outer ~pgq:new_pgq)
                with
                | Some _ ->
                    Some
                      (Plan.g_apply ~gcols ~var ~outer:new_outer
                         ~pgq:new_pgq)
                | None -> None)
          | _ -> None)
      | _ -> None)

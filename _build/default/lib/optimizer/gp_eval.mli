(** Group-evaluation (gp-eval) column analysis (paper Section 4.3).

    The gp-eval columns of a per-group query are the columns needed to
    *evaluate* it — selection, grouping, aggregated and ordering columns
    — but not columns merely projected through, because those can be
    re-attached by later joins.  The invariant-grouping rule requires
    the gp-eval columns to be present at the node GApply moves above. *)

val of_pgq : group_schema:Schema.t -> Plan.t -> string list
(** gp-eval columns, restricted to actual group columns (references to
    columns computed inside the query are dropped). *)

val referenced_and_needs_all :
  group_schema:Schema.t -> Plan.t -> string list * bool
(** All group columns referenced anywhere in the query (including
    pass-through projections) — what projection-before-GApply must keep —
    together with a flag telling whether a group scan's full row reaches
    the output unprojected (in which case nothing can be cut). *)

(* Shared plumbing for transformation rules. *)

type rule = {
  name : string;
  description : string;
  cost_based : bool;
      (** true when the rule is not always beneficial and the driver
          should keep the rewrite only if the estimated cost drops
          (paper Table 1 distinguishes exactly these) *)
  transform : Catalog.t -> Plan.t -> Plan.t option;
      (** attempt to fire at the given node; [None] when inapplicable *)
}

let make ~name ~description ?(cost_based = false) transform =
  { name; description; cost_based; transform }

(** Try [rule] at every node, top-down; rewrite the first match. *)
let apply_once (rule : rule) (cat : Catalog.t) (plan : Plan.t) :
    Plan.t option =
  let rec go p =
    match rule.transform cat p with
    | Some p' -> Some p'
    | None ->
        let rec try_children before = function
          | [] -> None
          | child :: rest -> (
              match go child with
              | Some child' ->
                  Some
                    (Plan.with_children p
                       (List.rev_append before (child' :: rest)))
              | None -> try_children (child :: before) rest)
        in
        try_children [] (Plan.children p)
  in
  go plan

(** Exhaustively apply [rule] everywhere (bounded to avoid pathological
    non-termination; the paper's rules all strictly reduce or eliminate
    GApply so the bound is never hit in practice). *)
let apply_exhaustively ?(max_steps = 64) rule cat plan =
  let rec loop n plan fired =
    if n >= max_steps then (plan, fired)
    else
      match apply_once rule cat plan with
      | Some plan' -> loop (n + 1) plan' (fired + 1)
      | None -> (plan, fired)
  in
  loop 0 plan 0

(* ---------- small helpers used by several rules ---------- *)

let names_of_refs refs =
  List.map (fun (r : Expr.col_ref) -> r.Expr.name) refs

let no_duplicates names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) -> (not (String.equal a b)) && go rest
    | _ -> true
  in
  go sorted

(** Column references for every column of [schema], qualified by source
    when available (so they stay unambiguous after joins). *)
let refs_of_schema (schema : Schema.t) : Expr.col_ref list =
  List.map
    (fun (c : Schema.column) -> Expr.col ?qual:c.Schema.source c.Schema.cname)
    (Schema.to_list schema)

(** Identity projection items for [schema]. *)
let identity_items (schema : Schema.t) : (Expr.t * string) list =
  List.map
    (fun (c : Schema.column) ->
      (Expr.Col (Expr.col ?qual:c.Schema.source c.Schema.cname), c.Schema.cname))
    (Schema.to_list schema)

(** Does every column reference of [e] resolve (by plain name) within
    [names]?  Outer references disqualify. *)
let expr_within_names names (e : Expr.t) =
  (not (Expr.references_outer e))
  && List.for_all
       (fun (r : Expr.col_ref) -> List.mem r.Expr.name names)
       (Expr.columns e)

(** Fresh, collision-free renamings for group-selection join keys. *)
let gsel_name i name = Printf.sprintf "__gsel%d_%s" i name

(** [schema_of plan] with plan errors turned into rule inapplicability. *)
let try_schema plan = try Some (Props.schema_of plan) with _ -> None

(** Containment of [needle]'s conjuncts in some Select node of [plan],
    up to column qualifiers — used to avoid re-firing selection-insertion
    rules after classic pushdown has moved (and re-qualified) the
    selection. *)
let selection_already_present needle plan =
  let needle_conjuncts = Expr.conjuncts needle in
  Plan.fold
    (fun acc node ->
      acc
      ||
      match node with
      | Plan.Select { pred; _ } ->
          let have = Expr.conjuncts pred in
          List.for_all
            (fun c -> List.exists (Expr.equal_modulo_quals c) have)
            needle_conjuncts
      | _ -> false)
    false plan

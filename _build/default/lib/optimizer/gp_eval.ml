(* Group-evaluation (gp-eval) column analysis (paper Section 4.3).

   The gp-eval columns of a per-group query are the columns *needed to
   evaluate* it: selection columns, grouping columns, aggregated and
   ordering columns — but not columns that are merely projected through,
   because those can be re-attached by later joins.  Per the paper:

   - scan: empty set;
   - select: child's set plus the selection's columns;
   - groupby: child's set plus its grouping columns and returned columns;
   - aggregate / orderby: child's set plus aggregated / ordering columns;
   - other unary operators: child's set;
   - apply: union of both children;
   - union / union all: union of all children. *)

module Sset = Set.Make (String)

let cols_of_expr e = Sset.of_list (Expr.column_names e)

let cols_of_agg (a : Expr.agg) =
  match a.Expr.arg with None -> Sset.empty | Some e -> cols_of_expr e

let rec eval_cols (p : Plan.t) : Sset.t =
  match p with
  | Plan.Table_scan _ | Plan.Group_scan _ -> Sset.empty
  | Plan.Select { pred; input } ->
      Sset.union (eval_cols input) (cols_of_expr pred)
  | Plan.Project { input; _ } | Plan.Distinct input | Plan.Alias { input; _ }
    ->
      eval_cols input
  | Plan.Group_by { keys; aggs; input } ->
      let keys_set =
        Sset.of_list (List.map (fun (r : Expr.col_ref) -> r.Expr.name) keys)
      in
      let agg_set =
        List.fold_left
          (fun acc (a, _) -> Sset.union acc (cols_of_agg a))
          Sset.empty aggs
      in
      Sset.union (eval_cols input) (Sset.union keys_set agg_set)
  | Plan.Aggregate { aggs; input } ->
      List.fold_left
        (fun acc (a, _) -> Sset.union acc (cols_of_agg a))
        (eval_cols input) aggs
  | Plan.Order_by { keys; input } ->
      List.fold_left
        (fun acc (e, _) -> Sset.union acc (cols_of_expr e))
        (eval_cols input) keys
  | Plan.Exists { input; _ } -> eval_cols input
  | Plan.Apply { outer; inner } ->
      Sset.union (eval_cols outer) (eval_cols inner)
  | Plan.Union_all branches ->
      List.fold_left
        (fun acc b -> Sset.union acc (eval_cols b))
        Sset.empty branches
  | Plan.Join { pred; left; right; _ } ->
      Sset.union (cols_of_expr pred)
        (Sset.union (eval_cols left) (eval_cols right))
  | Plan.G_apply { gcols; outer; pgq; _ } ->
      let keys_set =
        Sset.of_list (List.map (fun (r : Expr.col_ref) -> r.Expr.name) gcols)
      in
      Sset.union keys_set (Sset.union (eval_cols outer) (eval_cols pgq))

(** gp-eval columns of a per-group query, restricted to columns of the
    group relation (references to columns computed inside the PGQ — e.g.
    an aggregate bound by an Apply — are not group columns and are
    dropped). *)
let of_pgq ~group_schema (pgq : Plan.t) : string list =
  let group_cols = Sset.of_list (Schema.names group_schema) in
  Sset.elements (Sset.inter (eval_cols pgq) group_cols)

(** All group columns referenced anywhere in the per-group query,
    including pass-through projections — the column set the
    projection-before-GApply rule must retain.  [needs_all] is true when
    a group scan's full row can reach the PGQ output unprojected. *)
let referenced_and_needs_all ~group_schema (pgq : Plan.t) :
    string list * bool =
  let group_cols = Sset.of_list (Schema.names group_schema) in
  let referenced = ref Sset.empty in
  let note_expr e =
    List.iter
      (fun (r : Expr.col_ref) ->
        if Sset.mem r.Expr.name group_cols then
          referenced := Sset.add r.Expr.name !referenced)
      (Expr.columns e)
  in
  let note_agg (a : Expr.agg) = Option.iter note_expr a.Expr.arg in
  (* needs_all: does the subtree output contain the raw group row? *)
  let rec go (p : Plan.t) : bool =
    match p with
    | Plan.Group_scan _ -> true
    | Plan.Table_scan _ -> false
    | Plan.Select { pred; input } ->
        note_expr pred;
        go input
    | Plan.Project { items; input } ->
        List.iter (fun (e, _) -> note_expr e) items;
        ignore (go input);
        false
    | Plan.Distinct input | Plan.Alias { input; _ } -> go input
    | Plan.Order_by { keys; input } ->
        List.iter (fun (e, _) -> note_expr e) keys;
        go input
    | Plan.Group_by { keys; aggs; input } ->
        List.iter
          (fun (r : Expr.col_ref) ->
            if Sset.mem r.Expr.name group_cols then
              referenced := Sset.add r.Expr.name !referenced)
          keys;
        List.iter (fun (a, _) -> note_agg a) aggs;
        ignore (go input);
        false
    | Plan.Aggregate { aggs; input } ->
        List.iter (fun (a, _) -> note_agg a) aggs;
        ignore (go input);
        false
    | Plan.Exists { input; _ } ->
        ignore (go input);
        false
    | Plan.Apply { outer; inner } ->
        let o = go outer in
        let i = go inner in
        o || i
    | Plan.Union_all branches ->
        List.fold_left (fun acc b -> go b || acc) false branches
    | Plan.Join { pred; left; right; _ } ->
        note_expr pred;
        let l = go left in
        let r = go right in
        l || r
    | Plan.G_apply { gcols; outer; pgq; _ } ->
        List.iter
          (fun (r : Expr.col_ref) ->
            if Sset.mem r.Expr.name group_cols then
              referenced := Sset.add r.Expr.name !referenced)
          gcols;
        let o = go outer in
        ignore (go pgq);
        o
  in
  let needs_all = go pgq in
  (Sset.elements !referenced, needs_all)

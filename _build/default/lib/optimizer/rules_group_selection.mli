(** Group-selection rules (paper Section 4.2, Figures 5-6): queries that
    keep or drop whole groups based on a predicate are rewritten to
    evaluate the predicate first and rebuild only the qualifying groups.
    Both rules are cost-based (Table 1: average differs from average
    over wins).

    The join-back uses null-safe equality (GApply groups NULL keys
    together) and prunes redundant FK joins from the qualifying-keys
    phase. *)

val prune_fk_joins :
  Catalog.t -> needed:string list -> Plan.t -> Plan.t
(** Drop foreign-key joins whose right side contributes no needed
    column (sound: an FK join neither filters nor duplicates the left
    multiset). *)

val group_selection_exists : Rule_util.rule
(** Existential predicate (Figure 5). *)

val group_selection_aggregate : Rule_util.rule
(** Aggregate predicate: one accumulator per group (groupby + having)
    instead of materialised groups. *)

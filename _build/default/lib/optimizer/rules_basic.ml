(* Basic GApply rules (paper Section 4 preamble and Section 4.1) plus the
   traditional select/project normalisation rules the paper assumes
   ("the annotated join tree representation": selections and projections
   pushed down in the outer query). *)

open Rule_util

(* ---------- PGQ-free rules over GApply ---------- *)

(* sigma(RE1 GA_C RE2) = RE1 GA_C sigma(RE2)   when the predicate only
   involves columns returned by RE2.  Extension (documented in DESIGN.md):
   conjuncts over the *grouping* columns may instead move to the outer
   input, because group keys are constant within a group. *)
let sigma_over_gapply =
  make ~name:"sigma-over-gapply"
    ~description:"push a selection above GApply into the per-group query"
    (fun _cat plan ->
      match plan with
      | Plan.Select
          { pred; input = Plan.G_apply ({ gcols; outer; pgq; _ } as g) } -> (
          match (try_schema pgq, try_schema outer) with
          | Some pgq_schema, Some _ ->
              let pgq_names = Schema.names pgq_schema in
              let gcol_names = names_of_refs gcols in
              if not (no_duplicates (gcol_names @ pgq_names)) then None
              else
                let inner_preds, outer_preds, stuck =
                  List.fold_left
                    (fun (i, o, s) c ->
                      if expr_within_names pgq_names c then (c :: i, o, s)
                      else if expr_within_names gcol_names c then
                        (i, c :: o, s)
                      else (i, o, c :: s))
                    ([], [], []) (Expr.conjuncts pred)
                in
                if inner_preds = [] && outer_preds = [] then None
                else
                  let pgq =
                    match inner_preds with
                    | [] -> pgq
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) pgq
                  in
                  let outer =
                    match outer_preds with
                    | [] -> outer
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) outer
                  in
                  let rewritten = Plan.G_apply { g with outer; pgq } in
                  Some
                    (match stuck with
                    | [] -> rewritten
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) rewritten)
          | _ -> None)
      | _ -> None)

(* pi_{C u B}(RE1 GA_C RE2) = RE1 GA_C pi_B(RE2): narrow the per-group
   query to the columns the projection actually consumes; the original
   projection stays on top for ordering/renaming and is cleaned up by
   [eliminate_identity_project] when it becomes the identity. *)
let pi_over_gapply =
  make ~name:"pi-over-gapply"
    ~description:"narrow the per-group query to projected columns"
    (fun _cat plan ->
      match plan with
      | Plan.Project
          { items; input = Plan.G_apply ({ gcols; pgq; _ } as g) } -> (
          match try_schema pgq with
          | None -> None
          | Some pgq_schema ->
              let pgq_names = Schema.names pgq_schema in
              let gcol_names = names_of_refs gcols in
              if not (no_duplicates (gcol_names @ pgq_names)) then None
              else
                let used =
                  List.concat_map (fun (e, _) -> Expr.column_names e) items
                in
                let needed =
                  List.filter (fun n -> List.mem n used) pgq_names
                in
                if List.length needed >= List.length pgq_names then None
                else if needed = [] then None
                else
                  let narrow =
                    Plan.project
                      (List.map (fun n -> (Expr.column n, n)) needed)
                      pgq
                  in
                  Some
                    (Plan.Project
                       { items; input = Plan.G_apply { g with pgq = narrow } }))
      | _ -> None)

(* ---------- Placing projections before GApply (Section 4.1) ---------- *)

(* Only the grouping columns and the columns referenced somewhere in the
   per-group query need to be produced by the outer query. *)
let projection_before_gapply =
  make ~name:"projection-before-gapply"
    ~description:
      "project the outer input to the grouping columns plus the columns \
       the per-group query references"
    (fun _cat plan ->
      match plan with
      | Plan.G_apply ({ gcols; var; outer; pgq; _ } as g) -> (
          match try_schema outer with
          | None -> None
          | Some outer_schema ->
              let referenced, needs_all =
                Gp_eval.referenced_and_needs_all ~group_schema:outer_schema
                  pgq
              in
              if needs_all || Plan.contains_table_scan pgq then None
              else
                let keep_names =
                  List.sort_uniq String.compare
                    (names_of_refs gcols @ referenced)
                in
                let all_names = Schema.names outer_schema in
                if not (no_duplicates all_names) then None
                else if List.length keep_names >= List.length all_names then
                  None
                else
                  (* keep original column order *)
                  let kept_cols =
                    List.filter
                      (fun (c : Schema.column) ->
                        List.mem c.Schema.cname keep_names)
                      (Schema.to_list outer_schema)
                  in
                  let items =
                    List.map
                      (fun (c : Schema.column) ->
                        ( Expr.Col
                            (Expr.col ?qual:c.Schema.source c.Schema.cname),
                          c.Schema.cname ))
                      kept_cols
                  in
                  let outer = Plan.project items outer in
                  let new_schema = Props.schema_of outer in
                  (* the projected schema loses table qualifiers, so strip
                     qualifiers from the per-group query's references and
                     from the grouping columns (sound: we verified above
                     that all outer column names are unique) *)
                  let strip_expr =
                    Expr.map (function
                      | Expr.Col r -> Expr.Col { r with Expr.qual = None }
                      | e -> e)
                  in
                  let strip_ref (r : Expr.col_ref) =
                    { r with Expr.qual = None }
                  in
                  let pgq =
                    Plan.rewrite_exprs ~f_expr:strip_expr ~f_ref:strip_ref pgq
                  in
                  let pgq =
                    Props.retarget_group_scans ~var ~schema:new_schema pgq
                  in
                  let gcols = List.map strip_ref gcols in
                  Some (Plan.G_apply { g with gcols; outer; pgq }))
      | _ -> None)

(* ---------- Placing selections before GApply (Section 4.1) ---------- *)

(* Push the covering range of the per-group query into the outer query,
   provided PGQ(empty) = empty.  The inserted selection is then moved
   down by the traditional pushdown rules. *)
let selection_before_gapply =
  make ~name:"selection-before-gapply"
    ~description:
      "insert the per-group query's covering range as a selection on the \
       outer input (requires emptyOnEmpty)"
    (fun _cat plan ->
      match plan with
      | Plan.G_apply ({ var; outer; pgq; _ } as g) -> (
          match Covering_range.of_pgq ~var pgq with
          | Covering_range.Whole -> None
          | Covering_range.Cond sigma ->
              if Expr.equal sigma (Expr.bool false) then None
              else if not (Empty_on_empty.check ~var pgq) then None
              else if selection_already_present sigma outer then None
              else Some (Plan.G_apply { g with outer = Plan.select sigma outer }))
      | _ -> None)

(* ---------- Converting GApply to groupby (Section 4.1) ---------- *)

let gapply_to_groupby =
  make ~name:"gapply-to-groupby"
    ~description:
      "replace GApply whose per-group query is a plain aggregation (or a \
       plain group-by) with an ordinary groupby"
    (fun _cat plan ->
      match plan with
      | Plan.G_apply { gcols; var; outer; pgq; _ } -> (
          match pgq with
          | Plan.Aggregate { aggs; input = Plan.Group_scan gs }
            when String.equal gs.var var ->
              Some (Plan.group_by gcols aggs outer)
          | Plan.Group_by { keys; aggs; input = Plan.Group_scan gs }
            when String.equal gs.var var ->
              Some (Plan.group_by (gcols @ keys) aggs outer)
          | _ -> None)
      | _ -> None)

(* ---------- traditional normalisation rules ---------- *)

let merge_selects =
  make ~name:"merge-selects" ~description:"fuse adjacent selections"
    (fun _cat plan ->
      match plan with
      | Plan.Select { pred = p1; input = Plan.Select { pred = p2; input } }
        ->
          Some (Plan.select (Expr.( &&& ) p2 p1) input)
      | _ -> None)

(* Push selection conjuncts below a join when they reference only one
   side (part of the annotated-join-tree normalisation of Section 4). *)
let select_pushdown_join =
  make ~name:"select-pushdown-join"
    ~description:"push one-sided selection conjuncts below a join"
    (fun _cat plan ->
      match plan with
      | Plan.Select { pred; input = Plan.Join ({ left; right; _ } as j) }
        -> (
          match (try_schema left, try_schema right) with
          | Some ls, Some rs ->
              let lnames = Schema.names ls and rnames = Schema.names rs in
              if not (no_duplicates (lnames @ rnames)) then None
              else
                let lp, rp, stay =
                  List.fold_left
                    (fun (l, r, s) c ->
                      if expr_within_names lnames c then (c :: l, r, s)
                      else if expr_within_names rnames c then (l, c :: r, s)
                      else (l, r, c :: s))
                    ([], [], []) (Expr.conjuncts pred)
                in
                if lp = [] && rp = [] then None
                else
                  let left =
                    match lp with
                    | [] -> left
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) left
                  in
                  let right =
                    match rp with
                    | [] -> right
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) right
                  in
                  let joined = Plan.Join { j with left; right } in
                  Some
                    (match stay with
                    | [] -> joined
                    | ps -> Plan.select (Expr.conjoin (List.rev ps)) joined)
          | _ -> None)
      | _ -> None)

(* Push a selection through a projection by substituting the projection's
   defining expressions into the predicate (sound because expressions are
   pure). *)
let select_through_project =
  make ~name:"select-through-project"
    ~description:"commute a selection below a projection"
    (fun _cat plan ->
      match plan with
      | Plan.Select { pred; input = Plan.Project { items; input } } ->
          let lookup (r : Expr.col_ref) =
            match
              List.filter (fun (_, name) -> String.equal name r.Expr.name)
                items
            with
            | [ (e, _) ] -> Some e
            | _ -> None
          in
          let ok = ref true in
          let pred' =
            Expr.map
              (function
                | Expr.Col r as e -> (
                    match lookup r with
                    | Some def -> def
                    | None ->
                        ok := false;
                        e)
                | e -> e)
              pred
          in
          if !ok then
            Some (Plan.project items (Plan.select pred' input))
          else None
      | _ -> None)

let eliminate_identity_project =
  make ~name:"eliminate-identity-project"
    ~description:"drop projections that are the identity on their input"
    (fun _cat plan ->
      match plan with
      | Plan.Project { items; input } -> (
          match try_schema input with
          | Some s
            when List.length items = Schema.arity s
                 && List.for_all2
                      (fun (e, name) (c : Schema.column) ->
                        String.equal name c.Schema.cname
                        &&
                        match e with
                        | Expr.Col r -> String.equal r.Expr.name c.Schema.cname
                        | _ -> false)
                      items (Schema.to_list s) ->
              Some input
          | _ -> None)
      | _ -> None)

(* Decorrelation of scalar-aggregate subqueries (the "orthogonal
   optimization of subqueries and aggregation" of Galindo-Legaria &
   Joshi [12], which the paper cites as the home of GApply).

   Pattern (exactly what the binder produces for the paper's Section 2
   correlated SQL, e.g. Q2's per-row average):

     select[P](
       apply(R,
             aggregate[agg as a](
               select[corr-eqs AND rest](T))))

   where T is uncorrelated, [corr-eqs] are equality conjuncts between an
   outer column of R and a column of T, and P is null-rejecting on [a]
   (it compares [a] with something, so rows whose aggregate is NULL are
   dropped either way).

   Rewrite:

     project[R.*, a](
       select[P](
         join[R.o = T.c, ...](R,
                              groupby[c...; agg as a](select[rest](T)))))

   The null-rejection condition is what makes the inner join sound: an
   outer row with an empty group would have received a NULL aggregate
   from Apply and been rejected by P; the join simply drops it earlier.
   With this rule the engine executes the paper's verbatim correlated
   formulations with the same asymptotics as the hand-decorrelated
   baselines. *)

open Rule_util

let split_correlation ~outer_schema ~t_schema pred =
  let corr = ref [] and rest = ref [] and ok = ref true in
  List.iter
    (fun conjunct ->
      match conjunct with
      | Expr.Binary (Expr.Eq, Expr.Outer o, Expr.Col c)
      | Expr.Binary (Expr.Eq, Expr.Col c, Expr.Outer o)
        when Schema.find_all ?qual:o.Expr.qual o.Expr.name outer_schema <> []
             && Schema.find_all ?qual:c.Expr.qual c.Expr.name t_schema <> []
        ->
          corr := (o, c) :: !corr
      | e when Expr.references_outer e -> ok := false
      | e -> rest := e :: !rest)
    (Expr.conjuncts pred);
  if !ok then Some (List.rev !corr, List.rev !rest) else None

(* P must compare the aggregate output column with something, so NULL
   aggregates are rejected (comparison with NULL is unknown). *)
let null_rejecting_on ~column pred =
  List.exists
    (fun conjunct ->
      match conjunct with
      | Expr.Binary
          ((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Lte | Expr.Gt | Expr.Gte),
           a, b) ->
          let mentions e =
            List.exists
              (fun (r : Expr.col_ref) -> String.equal r.Expr.name column)
              (Expr.columns e)
          in
          mentions a || mentions b
      | _ -> false)
    (Expr.conjuncts pred)

let decorrelate_scalar_agg =
  make ~name:"decorrelate-scalar-agg"
    ~description:
      "turn a correlated scalar-aggregate subquery into a groupby + join \
       (Galindo-Legaria & Joshi)"
    (fun _cat plan ->
      match plan with
      | Plan.Select
          {
            pred;
            input =
              Plan.Apply
                {
                  outer = r;
                  inner =
                    Plan.Aggregate
                      {
                        aggs = [ (agg, agg_name) ];
                        input = Plan.Select { pred = q; input = t };
                      };
                };
          }
        when Plan.outer_refs t = []
             && (match agg.Expr.arg with
                | None -> true
                | Some e -> not (Expr.references_outer e))
             && null_rejecting_on ~column:agg_name pred -> (
          match (try_schema r, try_schema t) with
          | Some r_schema, Some t_schema -> (
              match
                split_correlation ~outer_schema:r_schema ~t_schema q
              with
              | None | Some ([], _) -> None
              | Some (corr, rest) ->
                  (* all referenced (source, name) pairs must stay
                     unambiguous after the join *)
                  let keys =
                    List.map
                      (fun (_, (c : Expr.col_ref)) ->
                        Schema.get t_schema
                          (Schema.find ?qual:c.Expr.qual c.Expr.name t_schema))
                      corr
                  in
                  let qualified (c : Schema.column) =
                    match c.Schema.source with
                    | None -> c.Schema.cname
                    | Some s -> s ^ "." ^ c.Schema.cname
                  in
                  let r_quals =
                    List.map qualified (Schema.to_list r_schema)
                  in
                  let key_quals = List.map qualified keys in
                  if
                    (not (no_duplicates (r_quals @ key_quals @ [ agg_name ])))
                    || List.mem agg_name (Schema.names r_schema)
                  then None
                  else
                    let filtered_t =
                      match rest with
                      | [] -> t
                      | ps -> Plan.select (Expr.conjoin ps) t
                    in
                    let grouped =
                      Plan.group_by
                        (List.map (fun (_, c) -> c) corr)
                        [ (agg, agg_name) ]
                        filtered_t
                    in
                    let join_pred =
                      Expr.conjoin
                        (List.map
                           (fun ((o : Expr.col_ref), (c : Expr.col_ref)) ->
                             Expr.( ==^ ) (Expr.Col o) (Expr.Col c))
                           corr)
                    in
                    let joined = Plan.join join_pred r grouped in
                    let filtered = Plan.select pred joined in
                    let items =
                      List.map
                        (fun (c : Schema.column) ->
                          ( Expr.Col
                              (Expr.col ?qual:c.Schema.source c.Schema.cname),
                            c.Schema.cname ))
                        (Schema.to_list r_schema)
                      @ [ (Expr.column agg_name, agg_name) ]
                    in
                    Some (Plan.project items filtered))
          | _ -> None)
      | _ -> None)

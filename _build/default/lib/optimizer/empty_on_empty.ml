(* The emptyOnEmpty analysis (paper Section 4.1).

   [check ~var pgq] decides whether the per-group query produces an empty
   result whenever the group bound to [var] is empty — the side condition
   of the selection-before-GApply rule: pushing the covering range into
   the outer query means the PGQ is never invoked on an emptied group, so
   PGQ(empty) = empty must hold for the rewrite to be exact.

   Per the paper:
   - scan: true;
   - select, project, distinct, groupby, orderby, exists: child's value;
   - aggregate: false (count-star of the empty relation is a row);
   - apply: the outer child's value;
   - union / union all: true iff true for all children.

   Extensions for our full operator set:
   - a NOT EXISTS returns a row on empty input: false;
   - a scan of a table or of a *different* group variable does not shrink
     when this group empties: false (conservative);
   - a nested GApply partitioning the emptied group forms no groups:
     its outer child's value;
   - join: true when it holds for either child (a join is empty as soon
     as either side is). *)

let rec check ~var (p : Plan.t) : bool =
  match p with
  | Plan.Group_scan g -> String.equal g.var var
  | Plan.Table_scan _ -> false
  | Plan.Select { input; _ }
  | Plan.Project { input; _ }
  | Plan.Distinct input
  | Plan.Group_by { input; _ }
  | Plan.Order_by { input; _ }
  | Plan.Alias { input; _ } ->
      check ~var input
  | Plan.Exists { input; negated } -> (not negated) && check ~var input
  | Plan.Aggregate _ -> false
  | Plan.Apply { outer; _ } -> check ~var outer
  | Plan.Union_all branches -> List.for_all (check ~var) branches
  | Plan.Join { left; right; _ } -> check ~var left || check ~var right
  | Plan.G_apply { outer; _ } -> check ~var outer

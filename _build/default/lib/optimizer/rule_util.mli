(** Plumbing shared by the transformation rules. *)

type rule = {
  name : string;
  description : string;
  cost_based : bool;
      (** the rule is not always beneficial; the driver keeps its rewrite
          only when the Section 4.4 estimate drops (the paper's Table 1
          distinguishes exactly these rules) *)
  transform : Catalog.t -> Plan.t -> Plan.t option;
      (** attempt to fire at the given node; [None] when inapplicable *)
}

val make :
  name:string ->
  description:string ->
  ?cost_based:bool ->
  (Catalog.t -> Plan.t -> Plan.t option) ->
  rule

val apply_once : rule -> Catalog.t -> Plan.t -> Plan.t option
(** Try at every node, top-down; rewrite the first match. *)

val apply_exhaustively :
  ?max_steps:int -> rule -> Catalog.t -> Plan.t -> Plan.t * int
(** Apply everywhere to (bounded) fixpoint; returns the number of
    firings. *)

(** {1 Helpers used by several rules} *)

val names_of_refs : Expr.col_ref list -> string list
val no_duplicates : string list -> bool
val refs_of_schema : Schema.t -> Expr.col_ref list
val identity_items : Schema.t -> (Expr.t * string) list
val expr_within_names : string list -> Expr.t -> bool
val gsel_name : int -> string -> string
val try_schema : Plan.t -> Schema.t option
val selection_already_present : Expr.t -> Plan.t -> bool

(** GApply vs. joins (paper Section 4.3). *)

val invariant_grouping : Rule_util.rule
(** Theorem 2: push GApply below a foreign-key join whose left side has
    the grouping and gp-eval columns; the per-group query is adapted by
    removing columns that re-attach through the join. *)

val pull_above_join : Rule_util.rule
(** The inverse move (Galindo-Legaria & Joshi [12]): the right side's
    columns are constant within a group and re-attach inside the
    per-group query via a distinct projection. *)

(* Group-selection rules (paper Section 4.2, Figures 5 and 6).

   These queries treat each group as a complex object and keep or drop
   the *whole* group based on a predicate:

   - existential predicate: the per-group query returns the whole group
     iff some tuple satisfies a condition S;
   - aggregate predicate: the whole group is kept iff an aggregate of the
     group satisfies a condition.

   The rewrite evaluates the predicate first — extracting only the
   qualifying group ids — and then reconstructs the qualifying groups by
   joining the ids back against the outer query T.  Both rules are
   cost-based: they win when the predicate is selective and lose when it
   is not (paper Table 1: "average" differs from "average over wins"). *)

open Rule_util

(* Redundant foreign-key-join elimination for the qualifying-keys phase:
   a join annotated as an FK join (every left row matches exactly one
   right row) can be dropped when the columns needed above all come from
   the left side — the join changes neither the multiset of left rows
   nor any needed column.  This is how the "extract the qualifying group
   ids" phase of Figure 5 avoids re-paying joins that only decorate the
   group (e.g. the supplier attributes). *)
let rec prune_fk_joins cat ~needed plan =
  match plan with
  | Plan.Join
      {
        fk = Some Plan.Left_to_right;
        left;
        right = Plan.Table_scan { table; _ } as right;
        pred;
      } -> (
      match (Rule_util.try_schema left, Rule_util.try_schema right) with
      | Some left_schema, Some right_schema ->
          let needed_on_left =
            List.for_all (fun n -> Schema.mem n left_schema) needed
          in
          (* every conjunct must be one left column = one right column,
             and the right columns must be exactly the right table's
             primary key — then the FK guarantees exactly one match per
             left row and the join is a no-op for the left multiset *)
          let conjuncts = Expr.conjuncts pred in
          let right_cols =
            List.filter_map
              (fun c ->
                match c with
                | Expr.Binary (Expr.Eq, Expr.Col a, Expr.Col b) -> (
                    let on_right (r : Expr.col_ref) =
                      Schema.find_all ?qual:r.Expr.qual r.Expr.name
                        right_schema
                      <> []
                    in
                    match (on_right a, on_right b) with
                    | true, false -> Some a.Expr.name
                    | false, true -> Some b.Expr.name
                    | _ -> None)
                | _ -> None)
              conjuncts
          in
          let pk =
            match Catalog.find_table_opt cat table with
            | Some t -> Table.primary_key t
            | None -> []
          in
          let set_eq a b =
            List.sort String.compare a = List.sort String.compare b
          in
          if
            needed_on_left
            && List.length right_cols = List.length conjuncts
            && pk <> []
            && set_eq right_cols pk
          then prune_fk_joins cat ~needed left
          else plan
      | _ -> plan)
  | Plan.Select { pred; input } ->
      let needed' = needed @ Expr.column_names pred in
      Plan.select pred (prune_fk_joins cat ~needed:needed' input)
  | p -> p

(* Project every column of [schema] (the key-side plan's output) to a
   fresh __gsel name, returning the projection items together with a
   lookup from original name to fresh name. *)
let rename_all schema =
  let cols = Schema.to_list schema in
  let items =
    List.mapi
      (fun i (c : Schema.column) ->
        ( Expr.Col (Expr.col ?qual:c.Schema.source c.Schema.cname),
          gsel_name i c.Schema.cname ))
      cols
  in
  let lookup name =
    let rec find i = function
      | [] -> None
      | (c : Schema.column) :: rest ->
          if String.equal c.Schema.cname name then Some (gsel_name i name)
          else find (i + 1) rest
    in
    find 0 cols
  in
  (items, lookup)

(* Join the renamed qualifying keys back with the outer query T on the
   grouping columns; returns the join and a resolver for key-side
   columns. *)
let build_join_back ~gcols ~keys_plan ~keys_schema ~outer_plan =
  let items, lookup = rename_all keys_schema in
  let renamed_keys = Plan.project items keys_plan in
  let pred_parts =
    List.map
      (fun (r : Expr.col_ref) ->
        match lookup r.Expr.name with
        | Some fresh ->
            (* null-safe equality: GApply groups NULL keys together, so
               the join-back must let NULL keys match *)
            Some
              (Expr.Binary
                 ( Expr.Nulleq,
                   Expr.column fresh,
                   Expr.Col (Expr.col ?qual:r.Expr.qual r.Expr.name) ))
        | None -> None)
      gcols
  in
  if List.exists Option.is_none pred_parts then None
  else
    let pred = Expr.conjoin (List.map Option.get pred_parts) in
    (* the (small) qualifying-key side goes right so the hash join builds
       on it and streams the big outer query past it *)
    Some (Plan.join pred outer_plan renamed_keys, lookup)

(* Final projection items that reproduce the original GApply output:
   first the grouping columns (taken from the renamed key side), then
   [tail_items]. *)
let restore_gcols ~gcols ~lookup =
  List.map
    (fun (r : Expr.col_ref) ->
      (Expr.column (Option.get (lookup r.Expr.name)), r.Expr.name))
    gcols

let outer_passthrough_items outer_schema =
  List.map
    (fun (c : Schema.column) ->
      ( Expr.Col (Expr.col ?qual:c.Schema.source c.Schema.cname),
        c.Schema.cname ))
    (Schema.to_list outer_schema)

(* ---------- existential group selection (Figures 5/6) ---------- *)

(* Pattern:  GApply(C, T) with
     PGQ = Apply(group, Exists(Select(S, group)))
   where S is a predicate over group columns only.

   Rewrite:  project[C, T.*](
               join[C] (distinct(project[C](select[S](T))), T))        *)
let group_selection_exists =
  make ~name:"group-selection-exists" ~cost_based:true
    ~description:
      "evaluate an existential group predicate first, then rebuild only \
       the qualifying groups"
    (fun cat plan ->
      match plan with
      | Plan.G_apply
          {
            gcols;
            var;
            outer;
            pgq =
              Plan.Apply
                {
                  outer = Plan.Group_scan g1;
                  inner =
                    Plan.Exists
                      {
                        negated = false;
                        input =
                          Plan.Select { pred = s; input = Plan.Group_scan g2 };
                      };
                };
            _;
          }
        when String.equal g1.var var && String.equal g2.var var -> (
          match try_schema outer with
          | None -> None
          | Some outer_schema ->
              let outer_names = Schema.names outer_schema in
              if not (no_duplicates outer_names) then None
              else if not (expr_within_names outer_names s) then None
              else
                let needed =
                  names_of_refs gcols @ Expr.column_names s
                in
                let keys_plan =
                  Plan.distinct
                    (Plan.project
                       (List.map
                          (fun (r : Expr.col_ref) ->
                            ( Expr.Col (Expr.col ?qual:r.Expr.qual r.Expr.name),
                              r.Expr.name ))
                          gcols)
                       (Plan.select s (prune_fk_joins cat ~needed outer)))
                in
                let keys_schema = Props.schema_of keys_plan in
                (match
                   build_join_back ~gcols ~keys_plan ~keys_schema
                     ~outer_plan:outer
                 with
                | None -> None
                | Some (joined, lookup) ->
                    let items =
                      restore_gcols ~gcols ~lookup
                      @ outer_passthrough_items outer_schema
                    in
                    Some (Plan.project items joined)))
      | _ -> None)

(* ---------- aggregate group selection (Section 4.2, second rule) ----- *)

(* Pattern:  GApply(C, T) with
     PGQ = [project[cols]] (select[P](Apply(group, Aggregate(aggs, group))))
   where P references only the aggregate output columns.

   Rewrite:  the qualifying keys come from
     select[P](groupby[C; aggs](T))
   which is pipelinable and stores one accumulator per group instead of
   whole groups (the paper's memory argument), then join back with T.  *)
let group_selection_aggregate =
  make ~name:"group-selection-aggregate" ~cost_based:true
    ~description:
      "evaluate an aggregate group predicate via groupby + having, then \
       rebuild only the qualifying groups"
    (fun cat plan ->
      let decompose pgq =
        (* returns (projection items option, P, aggs) *)
        match pgq with
        | Plan.Select
            {
              pred = p;
              input =
                Plan.Apply
                  {
                    outer = Plan.Group_scan g1;
                    inner = Plan.Aggregate { aggs; input = Plan.Group_scan g2 };
                  };
            } ->
            Some (None, p, aggs, g1.var, g2.var)
        | Plan.Project
            {
              items;
              input =
                Plan.Select
                  {
                    pred = p;
                    input =
                      Plan.Apply
                        {
                          outer = Plan.Group_scan g1;
                          inner =
                            Plan.Aggregate
                              { aggs; input = Plan.Group_scan g2 };
                        };
                  };
            } ->
            Some (Some items, p, aggs, g1.var, g2.var)
        | _ -> None
      in
      match plan with
      | Plan.G_apply { gcols; var; outer; pgq; _ } -> (
          match decompose pgq with
          | Some (proj_items, p, aggs, v1, v2)
            when String.equal v1 var && String.equal v2 var -> (
              match try_schema outer with
              | None -> None
              | Some outer_schema ->
                  let outer_names = Schema.names outer_schema in
                  let agg_names = List.map snd aggs in
                  if not (no_duplicates (outer_names @ agg_names)) then None
                  else if not (expr_within_names agg_names p) then None
                  else if
                    (* projection items must be pass-through columns *)
                    not
                      (match proj_items with
                      | None -> true
                      | Some items ->
                          List.for_all
                            (fun (e, _) ->
                              match e with Expr.Col _ -> true | _ -> false)
                            items)
                  then None
                  else
                    let needed =
                      names_of_refs gcols
                      @ List.concat_map
                          (fun (a, _) -> names_of_refs (Expr.agg_columns a))
                          aggs
                    in
                    let keys_plan =
                      Plan.select p
                        (Plan.group_by gcols aggs
                           (prune_fk_joins cat ~needed outer))
                    in
                    let keys_schema = Props.schema_of keys_plan in
                    (match
                       build_join_back ~gcols ~keys_plan ~keys_schema
                         ~outer_plan:outer
                     with
                    | None -> None
                    | Some (joined, lookup) ->
                        (* reconstruct the PGQ's output columns: group
                           columns come from the T side, aggregate
                           columns from the renamed key side *)
                        let tail_ok = ref true in
                        let tail_items =
                          match proj_items with
                          | None -> outer_passthrough_items outer_schema
                          | Some items ->
                              List.map
                                (fun (e, name) ->
                                  match e with
                                  | Expr.Col r
                                    when List.mem r.Expr.name agg_names -> (
                                      match lookup r.Expr.name with
                                      | Some fresh ->
                                          (Expr.column fresh, name)
                                      | None ->
                                          tail_ok := false;
                                          (e, name))
                                  | Expr.Col _ -> (e, name)
                                  | _ ->
                                      tail_ok := false;
                                      (e, name))
                                items
                        in
                        let agg_tail =
                          match proj_items with
                          | Some _ -> []
                          | None ->
                              (* no projection: PGQ output ends with the
                                 aggregate columns from the Apply *)
                              List.map
                                (fun name ->
                                  ( Expr.column
                                      (Option.get (lookup name)),
                                    name ))
                                agg_names
                        in
                        if not !tail_ok then None
                        else
                          let items =
                            restore_gcols ~gcols ~lookup
                            @ tail_items @ agg_tail
                          in
                          Some (Plan.project items joined)))
          | _ -> None)
      | _ -> None)

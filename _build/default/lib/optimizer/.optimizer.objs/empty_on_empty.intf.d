lib/optimizer/empty_on_empty.mli: Plan

lib/optimizer/gp_eval.ml: Expr List Option Plan Schema Set String

lib/optimizer/gp_eval.mli: Plan Schema

lib/optimizer/cost.ml: Catalog Expr Float List Option Plan Stats Table Value

lib/optimizer/rule_util.mli: Catalog Expr Plan Schema

lib/optimizer/rule_util.ml: Catalog Expr List Plan Printf Props Schema String

lib/optimizer/rules_join.ml: Expr Gp_eval List Plan Props Rule_util Schema Set String

lib/optimizer/rules_decorrelate.mli: Rule_util

lib/optimizer/covering_range.mli: Expr Plan

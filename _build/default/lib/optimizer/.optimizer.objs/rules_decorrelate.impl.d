lib/optimizer/rules_decorrelate.ml: Expr List Plan Rule_util Schema String

lib/optimizer/covering_range.ml: Expr List Plan Schema String

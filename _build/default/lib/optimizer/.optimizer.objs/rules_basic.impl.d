lib/optimizer/rules_basic.ml: Covering_range Empty_on_empty Expr Gp_eval List Plan Props Rule_util Schema String

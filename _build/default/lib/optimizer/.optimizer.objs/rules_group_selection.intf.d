lib/optimizer/rules_group_selection.mli: Catalog Plan Rule_util

lib/optimizer/empty_on_empty.ml: List Plan String

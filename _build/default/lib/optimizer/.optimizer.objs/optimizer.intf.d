lib/optimizer/optimizer.mli: Catalog Plan Rule_util

lib/optimizer/rules_basic.mli: Rule_util

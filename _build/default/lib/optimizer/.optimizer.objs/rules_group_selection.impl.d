lib/optimizer/rules_group_selection.ml: Catalog Expr List Option Plan Props Rule_util Schema String Table

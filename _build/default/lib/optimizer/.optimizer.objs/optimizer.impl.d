lib/optimizer/optimizer.ml: Catalog Cost Errors List Plan Printf Rule_util Rules_basic Rules_decorrelate Rules_group_selection Rules_join String

lib/optimizer/cost.mli: Catalog Expr Plan

(** Decorrelation of scalar-aggregate subqueries (Galindo-Legaria &
    Joshi [12]): a correlated scalar aggregate under a null-rejecting
    comparison becomes groupby + join, giving the paper's verbatim
    Section 2 SQL the asymptotics of the hand-decorrelated baselines. *)

val decorrelate_scalar_agg : Rule_util.rule

(* Covering-range analysis (paper Section 4.1, Theorem 1).

   The covering range of an operator in a per-group query is a selection
   condition over the group relation such that running the subtree on the
   covered subset of the group is equivalent to running it on the whole
   group.  The rules, from the paper:

   - scan (of the group): the whole group (condition "true");
   - select: if it has an apply/groupby/aggregate descendant, its child's
     range; otherwise its child's range ANDed with its own condition;
   - every other unary operator: its child's range;
   - apply, union, union all: the disjunction of the children's ranges.

   Two soundness refinements beyond the paper's sketch:
   - a select condition participates only when every column it references
     is *transparent* — i.e. reaches the select unchanged from the group
     scan under its original name.  Conditions over computed or renamed
     columns are dropped, which only weakens (enlarges) the range and is
     therefore still sound (Theorem 1 applies to any superset of the
     minimal covering set);
   - unhandled shapes (nested GApply, table scans mixed in) conservatively
     yield [Whole]. *)

type range =
  | Whole                (** the subtree may need every row of the group *)
  | Cond of Expr.t       (** rows satisfying this condition suffice *)

type analysis = {
  range : range;
  transparent : string list;
      (* group columns that reach this node's output unchanged *)
  complicated : bool;
      (* subtree contains apply / groupby / aggregate / gapply *)
}

let cond_false = Expr.bool false

let or_range a b =
  match (a, b) with
  | Whole, _ | _, Whole -> Whole
  | Cond x, Cond y ->
      if Expr.equal x cond_false then Cond y
      else if Expr.equal y cond_false then Cond x
      else Cond (Expr.( ||| ) x y)

let and_range r pred =
  match r with
  | Whole -> Cond pred
  | Cond x ->
      if Expr.equal x cond_false then Cond cond_false
      else Cond (Expr.( &&& ) x pred)

let pred_is_transparent transparent pred =
  (not (Expr.references_outer pred))
  && List.for_all
       (fun (r : Expr.col_ref) -> List.mem r.Expr.name transparent)
       (Expr.columns pred)

let rec analyze ~var (p : Plan.t) : analysis =
  match p with
  | Plan.Group_scan g when String.equal g.var var ->
      {
        range = Whole;
        transparent = Schema.names g.schema;
        complicated = false;
      }
  | Plan.Group_scan _ | Plan.Table_scan _ ->
      (* does not read the group: needs no group rows at all *)
      { range = Cond cond_false; transparent = []; complicated = false }
  | Plan.Select { pred; input } ->
      let a = analyze ~var input in
      let range =
        if a.complicated then a.range
        else if pred_is_transparent a.transparent pred then
          and_range a.range pred
        else a.range
      in
      { a with range }
  | Plan.Project { items; input } ->
      let a = analyze ~var input in
      let transparent =
        List.filter_map
          (fun (e, name) ->
            match e with
            | Expr.Col r
              when String.equal r.Expr.name name
                   && List.mem r.Expr.name a.transparent ->
                Some name
            | _ -> None)
          items
      in
      { a with transparent }
  | Plan.Distinct input
  | Plan.Order_by { input; _ }
  | Plan.Alias { input; _ } ->
      analyze ~var input
  | Plan.Group_by { keys; input; _ } ->
      let a = analyze ~var input in
      let transparent =
        List.filter_map
          (fun (r : Expr.col_ref) ->
            if List.mem r.Expr.name a.transparent then Some r.Expr.name
            else None)
          keys
      in
      { range = a.range; transparent; complicated = true }
  | Plan.Aggregate { input; _ } ->
      let a = analyze ~var input in
      { range = a.range; transparent = []; complicated = true }
  | Plan.Exists { input; _ } ->
      let a = analyze ~var input in
      { a with transparent = [] }
  | Plan.Apply { outer; inner } ->
      let ao = analyze ~var outer and ai = analyze ~var inner in
      (* output = outer columns ++ inner columns; keep names that are
         transparent on exactly one side to avoid ambiguity *)
      let both = List.filter (fun n -> List.mem n ai.transparent) ao.transparent in
      let transparent =
        List.filter (fun n -> not (List.mem n both)) ao.transparent
        @ List.filter (fun n -> not (List.mem n both)) ai.transparent
      in
      {
        range = or_range ao.range ai.range;
        transparent;
        complicated = true;
      }
  | Plan.Union_all branches ->
      let analyses = List.map (analyze ~var) branches in
      let range =
        List.fold_left
          (fun acc a -> or_range acc a.range)
          (Cond cond_false) analyses
      in
      let transparent =
        match analyses with
        | [] -> []
        | first :: rest ->
            List.filter
              (fun n ->
                List.for_all (fun a -> List.mem n a.transparent) rest)
              first.transparent
      in
      {
        range;
        transparent;
        complicated = List.exists (fun a -> a.complicated) analyses;
      }
  | Plan.Join _ | Plan.G_apply _ ->
      (* joins do not occur in per-group queries per the paper's
         restriction; nested GApply can drop whole sub-groups, which the
         range formalism does not capture — be conservative *)
      { range = Whole; transparent = []; complicated = true }

(** Covering range of a per-group query for variable [var]. *)
let of_pgq ~var (pgq : Plan.t) : range = (analyze ~var pgq).range

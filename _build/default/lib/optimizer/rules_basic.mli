(** The basic GApply rules (paper Section 4.1 and the two PGQ-free rules
    of the Section 4 preamble), plus the traditional select/project
    normalisation the paper's annotated-join-tree form assumes. *)

val sigma_over_gapply : Rule_util.rule
(** sigma(RE1 GA_C RE2) = RE1 GA_C sigma(RE2) when the predicate only
    involves columns returned by RE2; conjuncts over grouping columns
    move to the outer input instead (documented extension). *)

val pi_over_gapply : Rule_util.rule
(** pi_(C u B)(RE1 GA_C RE2) = RE1 GA_C pi_B(RE2). *)

val projection_before_gapply : Rule_util.rule
(** Project the outer input to the grouping columns plus the columns the
    per-group query references. *)

val selection_before_gapply : Rule_util.rule
(** Insert the PGQ's covering range as a selection on the outer input
    (Theorem 1; requires emptyOnEmpty). *)

val gapply_to_groupby : Rule_util.rule
(** Replace GApply whose PGQ is a plain aggregation (or plain group-by)
    with an ordinary groupby. *)

val merge_selects : Rule_util.rule
val select_through_project : Rule_util.rule
val select_pushdown_join : Rule_util.rule
val eliminate_identity_project : Rule_util.rule

(* Hand-written SQL lexer.

   Supports: identifiers (lowercased; double-quoted identifiers keep
   case), integer/float literals, single-quoted strings with '' escaping,
   line comments (-- ...), block comments, and the operator set of the
   dialect, including ':' for the paper's GROUP BY extension. *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let errorf st fmt =
  Format.kasprintf
    (fun msg ->
      Errors.parse_errorf "line %d, column %d: %s" st.line
        (st.pos - st.bol + 1) msg)
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> errorf st "unterminated block comment"
        | _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (match peek st with
    | Some ('e' | 'E') ->
        advance st;
        (match peek st with
        | Some ('+' | '-') -> advance st
        | _ -> ());
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ());
    Sql_token.Float_lit (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Sql_token.Int_lit (int_of_string (String.sub st.src start (st.pos - start)))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> errorf st "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        go ()
    | Some '\'' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Sql_token.Str_lit (Buffer.contents buf)

let lex_quoted_ident st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> errorf st "unterminated quoted identifier"
    | Some '"' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Sql_token.Quoted_ident (Buffer.contents buf)

let next_token st : Sql_token.positioned =
  skip_trivia st;
  let line = st.line and column = st.pos - st.bol + 1 in
  let simple tok =
    advance st;
    tok
  in
  let token =
    match peek st with
    | None -> Sql_token.Eof
    | Some c when is_digit c -> lex_number st
    | Some '\'' -> lex_string st
    | Some '"' -> lex_quoted_ident st
    | Some c when is_ident_start c ->
        let start = st.pos in
        while (match peek st with Some c -> is_ident_char c | None -> false) do
          advance st
        done;
        Sql_token.Ident
          (String.lowercase_ascii (String.sub st.src start (st.pos - start)))
    | Some '(' -> simple Sql_token.Lparen
    | Some ')' -> simple Sql_token.Rparen
    | Some ',' -> simple Sql_token.Comma
    | Some '.' -> simple Sql_token.Dot
    | Some ';' -> simple Sql_token.Semicolon
    | Some ':' -> simple Sql_token.Colon
    | Some '*' -> simple Sql_token.Star
    | Some '+' -> simple Sql_token.Plus
    | Some '-' -> simple Sql_token.Minus
    | Some '/' -> simple Sql_token.Slash
    | Some '|' when peek2 st = Some '|' ->
        advance st;
        advance st;
        Sql_token.Concat_op
    | Some '=' -> simple Sql_token.Eq
    | Some '!' when peek2 st = Some '=' ->
        advance st;
        advance st;
        Sql_token.Neq
    | Some '<' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            Sql_token.Lte
        | Some '>' ->
            advance st;
            Sql_token.Neq
        | _ -> Sql_token.Lt)
    | Some '>' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            Sql_token.Gte
        | _ -> Sql_token.Gt)
    | Some c -> errorf st "unexpected character %C" c
  in
  { Sql_token.token; line; column }

(** Tokenise the whole input (including a trailing [Eof]). *)
let tokenize src : Sql_token.positioned list =
  let st = make src in
  let rec go acc =
    let t = next_token st in
    match t.Sql_token.token with
    | Sql_token.Eof -> List.rev (t :: acc)
    | _ -> go (t :: acc)
  in
  go []

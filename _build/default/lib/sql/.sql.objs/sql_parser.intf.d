lib/sql/sql_parser.mli: Sql_ast

lib/sql/sql_binder.mli: Catalog Plan Schema Sql_ast

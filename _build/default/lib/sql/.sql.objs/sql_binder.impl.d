lib/sql/sql_binder.ml: Catalog Errors Expr List Option Plan Printf Props Schema Sql_ast String Table Tuple Value

lib/sql/sql_parser.ml: Array Datatype Errors Format List Sql_ast Sql_lexer Sql_token String

lib/sql/sql_lexer.ml: Buffer Errors Format List Sql_token String

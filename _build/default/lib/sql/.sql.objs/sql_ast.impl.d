lib/sql/sql_ast.ml: Buffer Datatype List Printf String

lib/sql/sql_token.ml:

(** Recursive-descent parser for the SQL dialect, including the paper's
    Section 3.1 extension:

    {v select gapply(<query over the group variable>) [as (c1, ...)]
       from ... where ...
       group by g1, ..., gk : var v}

    plus joins, grouping/HAVING, EXISTS / IN / scalar subqueries,
    UNION ALL, ORDER BY, CASE, BETWEEN, derived tables with column
    lists, and CREATE TABLE / INSERT / DROP / EXPLAIN statements.

    All entry points raise {!Errors.Parse_error} with line/column
    positions. *)

val parse_statement : string -> Sql_ast.statement
(** Parse one statement (an optional trailing ';' is consumed). *)

val parse_script : string -> Sql_ast.statement list
(** Parse a ';'-separated script. *)

val parse_query_string : string -> Sql_ast.query
(** Parse a SELECT query. *)

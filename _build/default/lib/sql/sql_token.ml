(* SQL tokens.  Keywords are recognised case-insensitively by the lexer;
   everything else is an identifier. *)

type t =
  | Ident of string     (* already lowercased *)
  | Quoted_ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Semicolon
  | Colon               (* the paper's GROUP BY ... : var separator *)
  | Star
  | Plus
  | Minus
  | Slash
  | Concat_op           (* || *)
  | Eq
  | Neq
  | Lt
  | Lte
  | Gt
  | Gte
  | Eof

let to_string = function
  | Ident s -> s
  | Quoted_ident s -> "\"" ^ s ^ "\""
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> "'" ^ s ^ "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Semicolon -> ";"
  | Colon -> ":"
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Concat_op -> "||"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Lte -> "<="
  | Gt -> ">"
  | Gte -> ">="
  | Eof -> "<eof>"

type positioned = { token : t; line : int; column : int }

lib/exec/cursor.mli: Relation Schema Tuple

lib/exec/reference.mli: Catalog Env Plan Relation

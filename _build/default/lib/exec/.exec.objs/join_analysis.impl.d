lib/exec/join_analysis.ml: Expr List Schema

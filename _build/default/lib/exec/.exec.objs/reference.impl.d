lib/exec/reference.ml: Agg_state Array Catalog Env Eval Expr List Plan Props Relation Schema Table Truth Tuple Value

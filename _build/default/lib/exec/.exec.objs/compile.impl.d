lib/exec/compile.ml: Agg_state Array Catalog Cursor Env Eval Expr Index Join_analysis Lazy List Option Plan Props Relation Schema Table Tuple Value

lib/exec/join_analysis.mli: Expr Schema

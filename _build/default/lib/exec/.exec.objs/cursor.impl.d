lib/exec/cursor.ml: Array List Relation Tuple

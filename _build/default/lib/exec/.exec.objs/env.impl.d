lib/exec/env.ml: Catalog Errors Eval List Relation

lib/exec/executor.mli: Catalog Compile Env Plan Relation

lib/exec/compile.mli: Cursor Env Plan Schema

lib/exec/env.mli: Catalog Eval Relation Schema Tuple

lib/exec/executor.ml: Catalog Compile Cursor Env List Plan Relation

(** Join predicate analysis for physical join selection.

    A conjunct [a = b] (or the null-safe [a <=> b]) is a usable hash
    equi-pair when one side references only left-input columns and the
    other only right-input columns.  Outer references disqualify a
    conjunct (its value is not a function of the joined row alone). *)

type side = Left_only | Right_only | Mixed

type split = {
  equi : (Expr.t * Expr.t * bool) list;
      (** (left expr, right expr, null_safe): a null-safe pair comes
          from [Expr.Nulleq] and lets NULL keys match each other *)
  residual : Expr.t list;
}

val side_of : left:Schema.t -> concat:Schema.t -> Expr.t -> side

val split : left:Schema.t -> right:Schema.t -> Expr.t -> split

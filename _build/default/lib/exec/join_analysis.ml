(* Join predicate analysis for physical join selection.

   A conjunct [a = b] is a usable equi-pair when one side references only
   left-input columns and the other only right-input columns (outer
   references disqualify a conjunct because its value is not a function of
   the joined row alone in general — those stay in the residual, which is
   evaluated on the concatenated row). *)

type side = Left_only | Right_only | Mixed

type split = {
  equi : (Expr.t * Expr.t * bool) list;
      (** (left-side expr, right-side expr, null_safe): a null_safe pair
          comes from [Expr.Nulleq] and lets NULL keys match each other *)
  residual : Expr.t list;
}

let side_of ~(left : Schema.t) ~(concat : Schema.t) (e : Expr.t) : side =
  if Expr.references_outer e then Mixed
  else
    let nl = Schema.arity left in
    let refs = Expr.columns e in
    let indexes =
      List.map
        (fun (r : Expr.col_ref) ->
          Schema.find ?qual:r.Expr.qual r.Expr.name concat)
        refs
    in
    let all_left = List.for_all (fun i -> i < nl) indexes in
    let all_right = List.for_all (fun i -> i >= nl) indexes in
    if refs = [] then Left_only (* constant: either side works *)
    else if all_left then Left_only
    else if all_right then Right_only
    else Mixed

(** Split [pred] into hashable equi-pairs and a residual conjunction. *)
let split ~(left : Schema.t) ~(right : Schema.t) (pred : Expr.t) : split =
  let concat = Schema.concat left right in
  List.fold_left
    (fun acc conjunct ->
      match conjunct with
      | Expr.Binary (((Expr.Eq | Expr.Nulleq) as op), a, b) -> (
          let null_safe = op = Expr.Nulleq in
          match
            (side_of ~left ~concat a, side_of ~left ~concat b)
          with
          | Left_only, Right_only ->
              { acc with equi = (a, b, null_safe) :: acc.equi }
          | Right_only, Left_only ->
              { acc with equi = (b, a, null_safe) :: acc.equi }
          | _ -> { acc with residual = conjunct :: acc.residual })
      | _ -> { acc with residual = conjunct :: acc.residual })
    { equi = []; residual = [] }
    (Expr.conjuncts pred)
  |> fun s -> { equi = List.rev s.equi; residual = List.rev s.residual }

(* Reference evaluator: a direct, naive implementation of the
   denotational semantics of Section 3/4 of the paper.

   This module deliberately shares no evaluation machinery with the
   physical compiler (it interprets expressions with [Eval.eval] instead
   of compiled closures, uses nested-loop joins, and evaluates GApply by
   the literal formula

     RE1 GA_C RE2 =
       union over c in distinct(project_C(RE1)) of ({c} x RE2(sigma_{C=c} RE1))

   ).  The test suite uses it as the oracle for the executor and for
   every optimizer rule. *)

let rec eval (env : Env.t) (p : Plan.t) : Relation.t =
  let outer = List.map fst env.Env.frames in
  let schema = Props.schema_of ~outer p in
  match p with
  | Plan.Table_scan { table; _ } ->
      let t = Catalog.find_table env.Env.catalog table in
      Relation.of_array schema (Relation.rows_array (Table.to_relation t))
  | Plan.Group_scan { var; _ } ->
      Relation.of_array schema (Relation.rows_array (Env.find_group env var))
  | Plan.Select { pred; input } ->
      let rel = eval env input in
      Relation.filter_rows
        (fun row ->
          Truth.to_bool
            (Eval.eval_pred ~frames:env.Env.frames (Relation.schema rel) row
               pred))
        rel
  | Plan.Project { items; input } ->
      let rel = eval env input in
      let in_schema = Relation.schema rel in
      Relation.of_array schema
        (Array.map
           (fun row ->
             Tuple.of_list
               (List.map
                  (fun (e, _) ->
                    Eval.eval ~frames:env.Env.frames in_schema row e)
                  items))
           (Relation.rows_array rel))
  | Plan.Join { pred; left; right; _ } ->
      let lrel = eval env left and rrel = eval env right in
      let out = ref [] in
      Relation.iter
        (fun lrow ->
          Relation.iter
            (fun rrow ->
              let row = Tuple.concat lrow rrow in
              if
                Truth.to_bool
                  (Eval.eval_pred ~frames:env.Env.frames schema row pred)
              then out := row :: !out)
            rrel)
        lrel;
      Relation.of_array schema (Array.of_list (List.rev !out))
  | Plan.Group_by { keys; aggs; input } ->
      let rel = eval env input in
      let in_schema = Relation.schema rel in
      let key_of row =
        Tuple.of_list
          (List.map
             (fun (r : Expr.col_ref) ->
               Tuple.get row (Schema.find ?qual:r.Expr.qual r.Expr.name in_schema))
             keys)
      in
      let groups = naive_group key_of (Relation.rows rel) in
      Relation.of_array schema
        (Array.of_list
           (List.map
              (fun (key, members) ->
                Tuple.concat key
                  (naive_aggregate env in_schema aggs members))
              groups))
  | Plan.Aggregate { aggs; input } ->
      let rel = eval env input in
      Relation.of_array schema
        [| naive_aggregate env (Relation.schema rel) aggs (Relation.rows rel) |]
  | Plan.Distinct input -> Relation.distinct (eval env input)
  | Plan.Alias { input; _ } ->
      Relation.of_array schema (Relation.rows_array (eval env input))
  | Plan.Order_by { keys; input } ->
      let rel = eval env input in
      let in_schema = Relation.schema rel in
      Relation.sort_by
        (fun a b ->
          let rec go = function
            | [] -> 0
            | (e, dir) :: rest ->
                let va = Eval.eval ~frames:env.Env.frames in_schema a e in
                let vb = Eval.eval ~frames:env.Env.frames in_schema b e in
                let c = Value.compare_total va vb in
                let c = match dir with Plan.Asc -> c | Plan.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go keys)
        rel
  | Plan.Union_all branches ->
      let rels = List.map (eval env) branches in
      List.fold_left
        (fun acc rel -> Relation.append acc rel)
        (Relation.empty schema)
        rels
  | Plan.Apply { outer = outer_plan; inner } ->
      let orel = eval env outer_plan in
      let oschema = Relation.schema orel in
      let out = ref [] in
      Relation.iter
        (fun orow ->
          let env' = Env.push_frame oschema orow env in
          let irel = eval env' inner in
          Relation.iter
            (fun irow -> out := Tuple.concat orow irow :: !out)
            irel)
        orel;
      Relation.of_array schema (Array.of_list (List.rev !out))
  | Plan.Exists { input; negated } ->
      let rel = eval env input in
      if Relation.is_empty rel <> negated then Relation.empty schema
      else Relation.of_array schema [| Tuple.empty |]
  | Plan.G_apply { gcols; var; outer = outer_plan; pgq; _ } ->
      let orel = eval env outer_plan in
      let oschema = Relation.schema orel in
      let idxs =
        List.map
          (fun (r : Expr.col_ref) ->
            Schema.find ?qual:r.Expr.qual r.Expr.name oschema)
          gcols
      in
      (* distinct(project_gcols(outer)), in first-occurrence order *)
      let keys =
        Relation.rows (Relation.distinct (Relation.project idxs orel))
      in
      let out = ref [] in
      List.iter
        (fun key ->
          let group =
            Relation.filter_rows
              (fun row -> Tuple.equal (Tuple.project idxs row) key)
              orel
          in
          let env' = Env.bind_group var group env in
          let result = eval env' pgq in
          Relation.iter
            (fun row -> out := Tuple.concat key row :: !out)
            result)
        keys;
      Relation.of_array schema (Array.of_list (List.rev !out))

(* Insertion-ordered grouping by naive key comparison. *)
and naive_group key_of rows =
  List.fold_left
    (fun acc row ->
      let key = key_of row in
      let rec insert = function
        | [] -> [ (key, [ row ]) ]
        | (k, members) :: rest when Tuple.equal k key ->
            (k, row :: members) :: rest
        | entry :: rest -> entry :: insert rest
      in
      insert acc)
    [] rows
  |> List.map (fun (k, members) -> (k, List.rev members))

and naive_aggregate env in_schema aggs rows : Tuple.t =
  let states =
    List.map (fun ((a : Expr.agg), _) -> (a, Agg_state.create a)) aggs
  in
  List.iter
    (fun row ->
      List.iter
        (fun ((a : Expr.agg), state) ->
          let v =
            match a.Expr.arg with
            | None -> Value.Null
            | Some e -> Eval.eval ~frames:env.Env.frames in_schema row e
          in
          Agg_state.add state v)
        states)
    rows;
  Tuple.of_list (List.map (fun (_, state) -> Agg_state.finish state) states)

(** Evaluate from a clean environment. *)
let run (catalog : Catalog.t) (p : Plan.t) : Relation.t =
  eval (Env.make catalog) p

(** Reference evaluator: a direct, naive implementation of the
    denotational semantics of paper Sections 3-4, sharing no evaluation
    machinery with the physical compiler.  GApply is evaluated by the
    literal formula

    {v RE1 GA_C RE2 =
         union over c in distinct(project_C(RE1))
           of ({c} x RE2(sigma_{C=c} RE1)) v}

    The test suite uses it as the oracle for the executor and for every
    optimizer rule. *)

val eval : Env.t -> Plan.t -> Relation.t
val run : Catalog.t -> Plan.t -> Relation.t

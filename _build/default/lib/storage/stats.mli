(** Table statistics for the cost model of paper Section 4.4: exact
    per-column distinct counts, null counts, and numeric min/max. *)

type column_stats = {
  distinct_count : int;
  null_count : int;
  min_value : Value.t;  (** [Value.Null] when the column is all-null/empty *)
  max_value : Value.t;
}

type table_stats = {
  row_count : int;
  columns : (string * column_stats) list;
}

val empty_column_stats : column_stats

val compute : Schema.t -> Relation.t -> table_stats

val column_stats : table_stats -> string -> column_stats option

val distinct_count : table_stats -> string -> int
(** At least 1; 1 for unknown columns. *)

val eq_selectivity : table_stats -> string -> float
(** 1 / distinct-count under the uniformity assumption. *)

val range_selectivity :
  table_stats -> string -> lower:bool -> Value.t -> float
(** Fraction passing [col < bound] ([lower]) or [col > bound],
    interpolated from min/max when numeric; 1/3 fallback. *)

val pp : Format.formatter -> table_stats -> unit

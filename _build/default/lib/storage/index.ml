(* Hash indexes over stored tables.

   An index maps a key (the indexed columns' values, compared under the
   total value order) to the row positions holding it.  The physical
   join compiler uses an index on the inner side of an equi-join to skip
   the per-query hash-build (index nested-loop join). *)

type t = {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;
  idx_positions : int list;         (* column positions in the table *)
  tbl : int list Tuple.Tbl.t;           (* key -> row offsets (reversed) *)
  mutable built_rows : int;         (* rows covered; rebuild when stale *)
}

let name t = t.idx_name
let table t = t.idx_table
let columns t = t.idx_columns

let key_of_row positions (row : Tuple.t) =
  Tuple.of_list (List.map (fun i -> Tuple.get row i) positions)

let create ~name ~(table : Table.t) ~columns : t =
  let schema = Table.schema table in
  let idx_positions = List.map (fun c -> Schema.find c schema) columns in
  let t =
    {
      idx_name = name;
      idx_table = Table.name table;
      idx_columns = columns;
      idx_positions;
      tbl = Tuple.Tbl.create 1024;
      built_rows = 0;
    }
  in
  t

(** (Re)build the index over the table's current contents. *)
let refresh (t : t) (table : Table.t) =
  if t.built_rows <> Table.cardinality table then begin
    Tuple.Tbl.reset t.tbl;
    let i = ref 0 in
    Table.iter
      (fun row ->
        let key = key_of_row t.idx_positions row in
        let existing =
          Option.value ~default:[] (Tuple.Tbl.find_opt t.tbl key)
        in
        Tuple.Tbl.replace t.tbl key (!i :: existing);
        incr i)
      table;
    t.built_rows <- Table.cardinality table
  end

(** Row offsets matching [key], in insertion order. *)
let lookup (t : t) (key : Tuple.t) : int list =
  match Tuple.Tbl.find_opt t.tbl key with
  | Some offsets -> List.rev offsets
  | None -> []

let cardinality (t : t) = Tuple.Tbl.length t.tbl

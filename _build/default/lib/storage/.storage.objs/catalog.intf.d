lib/storage/catalog.mli: Index Stats Table

lib/storage/table.mli: Datatype Relation Schema Tuple

lib/storage/index.ml: List Option Schema Table Tuple

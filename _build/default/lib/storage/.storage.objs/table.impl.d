lib/storage/table.ml: Array Errors List Relation Schema Tuple

lib/storage/stats.ml: Array Float Format Hashtbl List Relation Schema Tuple Value

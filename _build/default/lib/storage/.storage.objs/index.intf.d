lib/storage/index.mli: Table Tuple

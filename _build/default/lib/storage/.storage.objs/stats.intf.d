lib/storage/stats.mli: Format Relation Schema Value

lib/storage/catalog.ml: Errors Hashtbl Index List Stats String Table

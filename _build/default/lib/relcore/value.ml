(* Runtime values.

   Two comparison regimes coexist, as in SQL engines:
   - [sql_compare] implements expression-level comparison with NULL
     propagation (result is [None] when either side is NULL) and numeric
     int/float coercion;
   - [compare_total] is the total order used internally by sort, group-by
     and distinct, where NULL sorts first and compares equal to itself. *)

type t = Null | Int of int | Float of float | Str of string | Bool of bool

let type_of = function
  | Null -> None
  | Int _ -> Some Datatype.Int
  | Float _ -> Some Datatype.Float
  | Str _ -> Some Datatype.Str
  | Bool _ -> Some Datatype.Bool

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      (* Keep a trailing ".0" so floats round-trip through the parser. *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' ||
         String.contains s 'n' (* nan, inf *)
      then s
      else s ^ ".0"
  | Str s -> s
  | Bool b -> if b then "TRUE" else "FALSE"

(** Like [to_string] but quotes strings, for SQL literal rendering. *)
let to_literal = function
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''"
          else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ---------- numeric views ---------- *)

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ -> None

let numeric_exn ctx = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> Errors.type_errorf "%s: expected numeric value, got %s" ctx
           (to_string v)

(* ---------- total order (sorting / grouping / distinct) ---------- *)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | Float x, Float y -> compare x y
  | Int x, Float y -> compare (float_of_int x) y
  | Float x, Int y -> compare x (float_of_int y)
  | Str x, Str y -> compare x y
  | Bool x, Bool y -> compare x y
  | _ -> compare (rank a) (rank b)

let equal_total a b = compare_total a b = 0

(** Hash compatible with [equal_total]: ints and equal-valued floats hash
    alike so hash partitioning groups them together. *)
let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Bool b -> if b then 3 else 5

(* ---------- SQL (null-propagating) comparison ---------- *)

let sql_compare a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (compare x y)
  | Int x, Float y -> Some (compare (float_of_int x) y)
  | Float x, Int y -> Some (compare x (float_of_int y))
  | Str x, Str y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | _ ->
      Errors.type_errorf "cannot compare %s with %s" (to_string a)
        (to_string b)

let cmp_truth op a b =
  match sql_compare a b with
  | None -> Truth.Unknown
  | Some c -> Truth.of_bool (op c 0)

let eq = cmp_truth ( = )
let neq = cmp_truth ( <> )
let lt = cmp_truth ( < )
let lte = cmp_truth ( <= )
let gt = cmp_truth ( > )
let gte = cmp_truth ( >= )

(* ---------- arithmetic ---------- *)

let arith name int_op float_op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) ->
      Float (float_op (numeric_exn name a) (numeric_exn name b))
  | _ ->
      Errors.type_errorf "%s: non-numeric operands %s, %s" name (to_string a)
        (to_string b)

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

(* SQL raises on division by zero; we map it to NULL so generated
   parameter sweeps never abort a whole benchmark run.  This is the only
   deliberate deviation from strict SQL semantics. *)
let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) ->
      let d = numeric_exn "/" b in
      if d = 0. then Null else Float (numeric_exn "/" a /. d)
  | _ ->
      Errors.type_errorf "/: non-numeric operands %s, %s" (to_string a)
        (to_string b)

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> Errors.type_errorf "-: non-numeric operand %s" (to_string v)

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | x, y -> Str (to_string x ^ to_string y)

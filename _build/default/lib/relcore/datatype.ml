(* SQL datatypes supported by the engine.

   The engine is dynamically checked at execution time but plans carry
   declared types so the binder can reject ill-typed queries early. *)

type t =
  | Int
  | Float
  | Str
  | Bool
  | Null  (** type of an all-NULL column, e.g. a NULL literal padding an
              outer-union branch; unifies with every other type *)

let equal (a : t) (b : t) = a = b

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Str -> "VARCHAR"
  | Bool -> "BOOL"
  | Null -> "NULL"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" -> Some Int
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Some Float
  | "VARCHAR" | "CHAR" | "TEXT" | "STRING" -> Some Str
  | "BOOL" | "BOOLEAN" -> Some Bool
  | _ -> None

(** [is_numeric t] holds for types usable in arithmetic and aggregates
    such as [sum]/[avg]; the [Null] type is vacuously numeric. *)
let is_numeric = function Int | Float | Null -> true | Str | Bool -> false

(** Result type of an arithmetic operation over two numeric types:
    int op int = int, anything involving float = float. *)
let numeric_join a b =
  match (a, b) with
  | Null, t | t, Null -> t
  | Int, Int -> Int
  | (Int | Float), (Int | Float) -> Float
  | _ -> invalid_arg "Datatype.numeric_join: non-numeric operand"

(** Least upper bound used when unifying union-branch columns.
    [None] when the types are incompatible. *)
let unify a b =
  match (a, b) with
  | Null, t | t, Null -> Some t
  | Int, Int -> Some Int
  | (Int | Float), (Int | Float) -> Some Float
  | Str, Str -> Some Str
  | Bool, Bool -> Some Bool
  | (Int | Float | Str | Bool), _ -> None

(* Materialised relations: a schema plus an ordered multiset of rows.

   The engine follows SQL multiset semantics (Section 3 of the paper):
   duplicates are preserved everywhere and eliminated only by an explicit
   [distinct].  Row order is an artifact of evaluation; [equal_as_multiset]
   is the semantic comparison used throughout the test suite. *)

type t = { schema : Schema.t; rows : Tuple.t array }

let make schema rows = { schema; rows = Array.of_list rows }
let of_array schema rows = { schema; rows }
let empty schema = { schema; rows = [||] }

let schema r = r.schema
let rows r = Array.to_list r.rows
let rows_array r = r.rows
let cardinality r = Array.length r.rows
let is_empty r = Array.length r.rows = 0

let iter f r = Array.iter f r.rows
let fold f init r = Array.fold_left f init r.rows
let map_rows f r = { r with rows = Array.map f r.rows }
let filter_rows f r =
  { r with rows = Array.of_list (List.filter f (Array.to_list r.rows)) }

let append a b =
  if Schema.arity a.schema <> Schema.arity b.schema then
    Errors.plan_errorf "Relation.append: arity mismatch (%d vs %d)"
      (Schema.arity a.schema) (Schema.arity b.schema);
  { a with rows = Array.append a.rows b.rows }

(** Project both schema and rows onto the column indexes [idxs]. *)
let project idxs r =
  {
    schema = Schema.project idxs r.schema;
    rows = Array.map (Tuple.project idxs) r.rows;
  }

(** Stable sort by the given tuple comparison. *)
let sort_by cmp r =
  let rows = Array.copy r.rows in
  let tagged = Array.mapi (fun i t -> (i, t)) rows in
  Array.sort
    (fun (i, a) (j, b) ->
      let c = cmp a b in
      if c <> 0 then c else compare i j)
    tagged;
  { r with rows = Array.map snd tagged }

(** Duplicate elimination under the total value order (SQL DISTINCT). *)
let distinct r =
  let seen = Hashtbl.create 64 in
  let keep = ref [] in
  Array.iter
    (fun row ->
      let h = Tuple.hash row in
      let bucket = try Hashtbl.find seen h with Not_found -> [] in
      if not (List.exists (Tuple.equal row) bucket) then begin
        Hashtbl.replace seen h (row :: bucket);
        keep := row :: !keep
      end)
    r.rows;
  { r with rows = Array.of_list (List.rev !keep) }

(** Multiset equality: same rows with the same multiplicities,
    irrespective of order. *)
let equal_as_multiset a b =
  Array.length a.rows = Array.length b.rows
  && Schema.arity a.schema = Schema.arity b.schema
  &&
  let sort r =
    let c = Array.copy r.rows in
    Array.sort Tuple.compare c;
    c
  in
  let xa = sort a and xb = sort b in
  Array.for_all2 Tuple.equal xa xb

let equal_as_list a b =
  Array.length a.rows = Array.length b.rows
  && Array.for_all2 Tuple.equal a.rows b.rows

(** Pretty-print as an aligned ASCII table (used by the CLI and examples). *)
let pp ppf r =
  let headers =
    Array.map
      (fun (c : Schema.column) ->
        match c.Schema.source with
        | None -> c.Schema.cname
        | Some s -> s ^ "." ^ c.Schema.cname)
      r.schema
  in
  let ncols = Array.length headers in
  let width = Array.map String.length headers in
  let cells =
    Array.map
      (fun row ->
        Array.mapi
          (fun i v ->
            let s = Value.to_string v in
            if String.length s > width.(i) then width.(i) <- String.length s;
            s)
          (Array.sub row 0 ncols))
      r.rows
  in
  let line ppf () =
    for i = 0 to ncols - 1 do
      Format.fprintf ppf "+%s" (String.make (width.(i) + 2) '-')
    done;
    Format.fprintf ppf "+@\n"
  in
  let row ppf cells =
    for i = 0 to ncols - 1 do
      Format.fprintf ppf "| %-*s " width.(i) cells.(i)
    done;
    Format.fprintf ppf "|@\n"
  in
  if ncols = 0 then
    Format.fprintf ppf "(%d row(s) over the empty schema)@\n"
      (Array.length r.rows)
  else begin
    line ppf ();
    row ppf headers;
    line ppf ();
    Array.iter (row ppf) cells;
    line ppf ();
    Format.fprintf ppf "(%d row(s))@\n" (Array.length r.rows)
  end

let to_string r = Format.asprintf "%a" pp r

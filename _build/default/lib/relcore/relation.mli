(** Materialised relations: a schema plus an ordered multiset of rows.

    The engine follows SQL multiset semantics (paper Section 3):
    duplicates are preserved everywhere and eliminated only by an
    explicit {!distinct}.  Row order is an evaluation artifact;
    {!equal_as_multiset} is the semantic comparison used by the tests. *)

type t

val make : Schema.t -> Tuple.t list -> t
val of_array : Schema.t -> Tuple.t array -> t
val empty : Schema.t -> t

val schema : t -> Schema.t
val rows : t -> Tuple.t list
val rows_array : t -> Tuple.t array
val cardinality : t -> int
val is_empty : t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val map_rows : (Tuple.t -> Tuple.t) -> t -> t
val filter_rows : (Tuple.t -> bool) -> t -> t

val append : t -> t -> t
(** Multiset union (UNION ALL).
    @raise Errors.Plan_error on arity mismatch. *)

val project : int list -> t -> t
(** Project both schema and rows onto the given column indexes. *)

val sort_by : (Tuple.t -> Tuple.t -> int) -> t -> t
(** Stable sort. *)

val distinct : t -> t
(** Duplicate elimination under the total value order (SQL DISTINCT). *)

val equal_as_multiset : t -> t -> bool
(** Same rows with the same multiplicities, irrespective of order. *)

val equal_as_list : t -> t -> bool
(** Row-for-row equality including order. *)

val pp : Format.formatter -> t -> unit
(** Aligned ASCII table (used by the CLI and examples). *)

val to_string : t -> string

(** SQL datatypes.

    The engine checks values dynamically at execution time; declared
    types are used by the binder and plan-property derivation. *)

type t =
  | Int
  | Float
  | Str
  | Bool
  | Null
      (** type of an all-NULL column (e.g. a NULL literal padding an
          outer-union branch); unifies with every other type *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t option
(** Recognises the usual SQL spellings (INT/INTEGER/BIGINT, FLOAT/REAL/
    DOUBLE/DECIMAL/NUMERIC, VARCHAR/CHAR/TEXT/STRING, BOOL/BOOLEAN),
    case-insensitively. *)

val is_numeric : t -> bool
(** Holds for [Int], [Float] and (vacuously) [Null]. *)

val numeric_join : t -> t -> t
(** Result type of arithmetic: int op int = int, anything involving
    float = float; [Null] is absorbed.
    @raise Invalid_argument on non-numeric operands. *)

val unify : t -> t -> t option
(** Least upper bound used when unifying union-branch columns; [None]
    when incompatible. *)

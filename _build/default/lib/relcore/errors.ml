(* Engine-wide error reporting.

   Every layer of the engine raises one of these exceptions; user-facing
   entry points (the CLI, the [Engine] facade) catch them and render the
   payload.  We deliberately use distinct exceptions per phase so tests can
   assert on the failure class. *)

exception Type_error of string
(** A value or expression was used at the wrong type. *)

exception Name_error of string
(** An unresolvable or ambiguous column / table / variable name. *)

exception Parse_error of string
(** Raised by the SQL lexer/parser with position information. *)

exception Plan_error of string
(** A malformed logical plan (bad arity, unknown column, ...). *)

exception Exec_error of string
(** A runtime evaluation failure. *)

let type_errorf fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt
let name_errorf fmt = Format.kasprintf (fun s -> raise (Name_error s)) fmt
let parse_errorf fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt
let plan_errorf fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt
let exec_errorf fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

(** Render any engine exception as a one-line message; re-raises foreign
    exceptions. *)
let to_string = function
  | Type_error m -> "type error: " ^ m
  | Name_error m -> "name error: " ^ m
  | Parse_error m -> "parse error: " ^ m
  | Plan_error m -> "plan error: " ^ m
  | Exec_error m -> "execution error: " ^ m
  | e -> raise e

let is_engine_error = function
  | Type_error _ | Name_error _ | Parse_error _ | Plan_error _ | Exec_error _
    ->
      true
  | _ -> false

(* Schemas: ordered lists of typed, optionally qualified columns.

   A column's [source] is the table alias it came from (or [None] for
   computed columns); resolution accepts either a qualified reference
   ("ps1.ps_suppkey") or a bare name, and reports ambiguity when a bare
   name matches several columns. *)

type column = {
  source : string option;  (** table alias the column originates from *)
  cname : string;          (** column name, lowercase by convention *)
  ctype : Datatype.t;
}

type t = column array

let column ?source cname ctype = { source; cname; ctype }

let of_list cols : t = Array.of_list cols
let to_list (s : t) = Array.to_list s
let arity (s : t) = Array.length s
let get (s : t) i = s.(i)
let empty : t = [||]

let names (s : t) = Array.to_list (Array.map (fun c -> c.cname) s)
let types (s : t) = Array.to_list (Array.map (fun c -> c.ctype) s)

let column_matches ~qual ~name c =
  String.equal c.cname name
  && match qual with
     | None -> true
     | Some q -> ( match c.source with
                   | Some s -> String.equal s q
                   | None -> false )

(** [find_all ?qual name s] is the list of indexes matching the
    (possibly qualified) reference. *)
let find_all ?qual name (s : t) =
  let acc = ref [] in
  for i = Array.length s - 1 downto 0 do
    if column_matches ~qual ~name s.(i) then acc := i :: !acc
  done;
  !acc

let ref_to_string qual name =
  match qual with None -> name | Some q -> q ^ "." ^ name

(** [find ?qual name s] resolves a column reference to its index.
    @raise Errors.Name_error when unknown or ambiguous. *)
let find ?qual name (s : t) =
  match find_all ?qual name s with
  | [ i ] -> i
  | [] -> Errors.name_errorf "unknown column %s" (ref_to_string qual name)
  | _ :: _ :: _ ->
      Errors.name_errorf "ambiguous column %s" (ref_to_string qual name)

let mem ?qual name (s : t) = find_all ?qual name s <> []

(** Concatenation for joins / applies: left columns then right columns. *)
let concat (a : t) (b : t) : t = Array.append a b

(** [project idxs s] keeps the columns at [idxs], in that order. *)
let project idxs (s : t) : t =
  Array.of_list (List.map (fun i -> s.(i)) idxs)

(** [rename_source alias s] stamps every column as coming from [alias]
    (used when a FROM item is aliased). *)
let rename_source alias (s : t) : t =
  Array.map (fun c -> { c with source = Some alias }) s

(** Drop qualifiers — used when a derived table exports its columns. *)
let anonymous_sources (s : t) : t =
  Array.map (fun c -> { c with source = None }) s

let equal_modulo_sources (a : t) (b : t) =
  arity a = arity b
  && Array.for_all2
       (fun x y ->
         String.equal x.cname y.cname && Datatype.equal x.ctype y.ctype)
       a b

let pp_column ppf c =
  match c.source with
  | None -> Format.fprintf ppf "%s:%a" c.cname Datatype.pp c.ctype
  | Some s -> Format.fprintf ppf "%s.%s:%a" s c.cname Datatype.pp c.ctype

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_column)
    (Array.to_list s)

let to_string s = Format.asprintf "%a" pp s

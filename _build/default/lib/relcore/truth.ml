(* SQL three-valued logic.

   Predicates over values containing NULL evaluate to [Unknown]; a WHERE
   clause keeps a row only when its predicate is [True].  The tables below
   are the standard Kleene tables used by SQL. *)

type t = True | False | Unknown

let of_bool b = if b then True else False

(** [to_bool t] is the WHERE-clause interpretation: only [True] passes. *)
let to_bool = function True -> true | False | Unknown -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | True -> "true"
  | False -> "false"
  | Unknown -> "unknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

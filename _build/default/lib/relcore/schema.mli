(** Schemas: ordered arrays of typed, optionally qualified columns.

    A column's [source] is the table alias it came from ([None] for
    computed columns).  Resolution accepts either a qualified reference
    ("ps1.ps_suppkey") or a bare name, and reports ambiguity when a bare
    name matches several columns. *)

type column = {
  source : string option;  (** table alias the column originates from *)
  cname : string;          (** column name *)
  ctype : Datatype.t;
}

type t = column array

val column : ?source:string -> string -> Datatype.t -> column
val of_list : column list -> t
val to_list : t -> column list
val arity : t -> int
val get : t -> int -> column
val empty : t

val names : t -> string list
val types : t -> Datatype.t list

val find_all : ?qual:string -> string -> t -> int list
(** All indexes matching a (possibly qualified) reference. *)

val find : ?qual:string -> string -> t -> int
(** Resolve a column reference to its index.
    @raise Errors.Name_error when unknown or ambiguous. *)

val mem : ?qual:string -> string -> t -> bool

val concat : t -> t -> t
(** Concatenation for joins / applies: left columns then right. *)

val project : int list -> t -> t
(** Keep the columns at the given indexes, in that order. *)

val rename_source : string -> t -> t
(** Stamp every column as coming from the given alias. *)

val anonymous_sources : t -> t
(** Drop all qualifiers. *)

val equal_modulo_sources : t -> t -> bool
(** Same names and types, ignoring qualifiers. *)

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Tuples: flat value arrays positionally aligned with a schema. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t
val empty : t

val concat : t -> t -> t

val copy : t -> t
(** Shallow copy, used when an operator materialises rows into a
    temporary relation (e.g. GApply's partition phase). *)

val project : int list -> t -> t

val equal : t -> t -> bool
(** Pointwise {!Value.equal_total} (NULLs compare equal). *)

val compare : t -> t -> int
(** Lexicographic {!Value.compare_total}. *)

val hash : t -> int
(** Compatible with {!equal}. *)

(** Hash tables keyed on tuples under {!equal}/{!hash} (the total value
    order, where [Int 1] and [Float 1.0] coincide). *)
module Tbl : Hashtbl.S with type key = t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

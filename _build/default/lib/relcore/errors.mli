(** Engine-wide error reporting.

    Each processing phase raises its own exception so tests and callers
    can distinguish failure classes; user-facing entry points render the
    payload with {!to_string}. *)

exception Type_error of string
exception Name_error of string
exception Parse_error of string
exception Plan_error of string
exception Exec_error of string

val type_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val name_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val parse_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val plan_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val exec_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

val to_string : exn -> string
(** Render an engine exception as a one-line message; re-raises foreign
    exceptions. *)

val is_engine_error : exn -> bool

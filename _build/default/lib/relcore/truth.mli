(** SQL three-valued logic (the standard Kleene tables). *)

type t = True | False | Unknown

val of_bool : bool -> t

val to_bool : t -> bool
(** WHERE-clause interpretation: only [True] passes. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

lib/relcore/relation.ml: Array Errors Format Hashtbl List Schema String Tuple Value

lib/relcore/datatype.mli: Format

lib/relcore/errors.mli: Format

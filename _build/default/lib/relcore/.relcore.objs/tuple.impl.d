lib/relcore/tuple.ml: Array Format Hashtbl List Stdlib Value

lib/relcore/value.ml: Buffer Datatype Errors Format Hashtbl Printf String Truth

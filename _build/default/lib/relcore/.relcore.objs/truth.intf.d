lib/relcore/truth.mli: Format

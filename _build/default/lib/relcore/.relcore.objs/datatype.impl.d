lib/relcore/datatype.ml: Format String

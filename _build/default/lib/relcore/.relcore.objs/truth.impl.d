lib/relcore/truth.ml: Format

lib/relcore/tuple.mli: Format Hashtbl Value

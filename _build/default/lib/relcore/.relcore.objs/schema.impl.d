lib/relcore/schema.ml: Array Datatype Errors Format List String

lib/relcore/relation.mli: Format Schema Tuple

lib/relcore/value.mli: Datatype Format Truth

lib/relcore/errors.ml: Format

lib/relcore/schema.mli: Datatype Format

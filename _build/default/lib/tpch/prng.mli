(** SplitMix64: a small, fast, deterministic PRNG, so benchmark data is
    bit-for-bit reproducible across runs and OCaml versions. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)

val range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a

(* SplitMix64: a small, fast, deterministic PRNG.

   The generator (not OCaml's Random) is used so that benchmark data is
   bit-for-bit reproducible across runs and OCaml versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Uniform integer in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0

let pick t arr = arr.(int t (Array.length arr))

lib/tpch/tpch_gen.ml: Catalog Datatype List Printf Prng String Table Tuple Value

lib/tpch/prng.mli:

lib/tpch/tpch_gen.mli: Catalog

(** Static type inference for expressions.

    The engine checks values dynamically at execution time; inference
    gives derived columns sensible declared types and catches gross
    mistakes early.  NULL literals receive {!Datatype.Null}, which
    unifies with everything. *)

val infer :
  typeof_col:(Expr.col_ref -> Datatype.t) ->
  typeof_outer:(Expr.col_ref -> Datatype.t) ->
  Expr.t ->
  Datatype.t
(** @raise Errors.Type_error on ill-typed expressions. *)

val infer_with_schema :
  ?outer_schemas:Schema.t list -> Schema.t -> Expr.t -> Datatype.t
(** Infer against a concrete input schema; outer references resolve
    innermost-first through [outer_schemas]. *)

val infer_agg : ?outer_schemas:Schema.t list -> Schema.t -> Expr.agg -> Datatype.t

lib/expr/infer.ml: Agg_state Datatype Errors Expr List Option Schema Value

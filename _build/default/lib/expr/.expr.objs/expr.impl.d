lib/expr/expr.ml: Format List Option Printf String Value

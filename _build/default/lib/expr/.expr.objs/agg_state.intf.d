lib/expr/agg_state.mli: Datatype Expr Value

lib/expr/expr.mli: Format Value

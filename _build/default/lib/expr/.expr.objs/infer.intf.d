lib/expr/infer.mli: Datatype Expr Schema

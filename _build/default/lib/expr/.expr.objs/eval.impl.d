lib/expr/eval.ml: Errors Expr List Option Schema Truth Tuple Value

lib/expr/agg_state.ml: Datatype Errors Expr Hashtbl Value

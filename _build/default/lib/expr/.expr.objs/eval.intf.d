lib/expr/eval.mli: Expr Schema Truth Tuple Value

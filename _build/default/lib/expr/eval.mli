(** Expression evaluation.

    Booleans follow SQL three-valued logic: a predicate yields
    [Value.Bool _] or [Value.Null] (= unknown); {!truth} converts such a
    value into a {!Truth.t} for WHERE-clause filtering.

    {!eval} interprets the AST directly (used by the reference
    evaluator); {!compile} pre-resolves column references against a fixed
    input schema and returns a closure, which the physical operators use
    on their hot paths. *)

type frames = (Schema.t * Tuple.t) list
(** Enclosing Apply frames, innermost first: the schema and current row
    of each outer input a correlated subplan may reference. *)

val truth : Value.t -> Truth.t
(** @raise Errors.Type_error on non-boolean values. *)

val of_truth : Truth.t -> Value.t

val lookup_frames : Expr.col_ref -> frames -> Value.t
(** Innermost-first resolution of an outer reference.
    @raise Errors.Name_error when unresolved or ambiguous. *)

val eval : frames:frames -> Schema.t -> Tuple.t -> Expr.t -> Value.t
val eval_pred : frames:frames -> Schema.t -> Tuple.t -> Expr.t -> Truth.t

type compiled = frames -> Tuple.t -> Value.t

val compile : Schema.t -> Expr.t -> compiled
(** Pre-resolve column references; raises resolution errors eagerly. *)

val compile_pred : Schema.t -> Expr.t -> frames -> Tuple.t -> bool
(** WHERE semantics: unknown rejects. *)

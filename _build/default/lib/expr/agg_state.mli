(** Aggregate accumulators.

    SQL semantics: NULL inputs are skipped (for every aggregate except
    count-star); SUM/AVG/MIN/MAX over zero non-null inputs yield NULL;
    COUNT yields 0.  DISTINCT aggregates deduplicate inputs under the
    total value order. *)

type t

val create : Expr.agg -> t

val add : t -> Value.t -> unit
(** Feed one row's evaluated argument (pass [Value.Null] for count-star,
    which counts every row).
    @raise Errors.Type_error on non-numeric SUM/AVG input. *)

val finish : t -> Value.t

val result_type : Expr.agg -> Datatype.t option -> Datatype.t
(** Declared result type given the argument type. *)

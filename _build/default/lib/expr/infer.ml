(* Static type inference for expressions.

   The engine checks values dynamically at execution time; inference is
   used by the binder and plan-property derivation to give derived columns
   sensible declared types (and to catch gross mistakes early).  NULL
   literals receive the dedicated [Datatype.Null] type which unifies with
   everything. *)


(** [infer ~typeof_col ~typeof_outer e] computes the declared type of [e].
    [typeof_col]/[typeof_outer] resolve column references; the defaults
    raise {!Errors.Name_error}. *)
let rec infer ~(typeof_col : Expr.col_ref -> Datatype.t)
    ~(typeof_outer : Expr.col_ref -> Datatype.t) (e : Expr.t) : Datatype.t =
  let recur = infer ~typeof_col ~typeof_outer in
  match e with
  | Expr.Col r -> typeof_col r
  | Expr.Outer r -> typeof_outer r
  | Expr.Lit v -> (
      match Value.type_of v with None -> Datatype.Null | Some t -> t)
  | Expr.Unary (Expr.Neg, a) ->
      let t = recur a in
      if Datatype.is_numeric t then t
      else Errors.type_errorf "unary minus over %s" (Datatype.to_string t)
  | Expr.Unary ((Expr.Not | Expr.Is_null | Expr.Is_not_null), _) ->
      Datatype.Bool
  | Expr.Binary ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div), a, b) ->
      let ta = recur a and tb = recur b in
      if Datatype.is_numeric ta && Datatype.is_numeric tb then
        Datatype.numeric_join ta tb
      else
        Errors.type_errorf "arithmetic over %s and %s"
          (Datatype.to_string ta) (Datatype.to_string tb)
  | Expr.Binary (Expr.Concat, _, _) -> Datatype.Str
  | Expr.Binary
      ( (Expr.Eq | Expr.Neq | Expr.Lt | Expr.Lte | Expr.Gt | Expr.Gte
        | Expr.Nulleq),
        a,
        b ) ->
      let ta = recur a and tb = recur b in
      (match Datatype.unify ta tb with
      | Some _ -> ()
      | None ->
          Errors.type_errorf "comparison between %s and %s"
            (Datatype.to_string ta) (Datatype.to_string tb));
      Datatype.Bool
  | Expr.Binary ((Expr.And | Expr.Or), _, _) -> Datatype.Bool
  | Expr.Case (whens, els) ->
      let branch_types =
        List.map (fun (_, v) -> recur v) whens
        @ (match els with None -> [ Datatype.Null ] | Some e -> [ recur e ])
      in
      List.fold_left
        (fun acc t ->
          match Datatype.unify acc t with
          | Some u -> u
          | None ->
              Errors.type_errorf "CASE branches have incompatible types %s, %s"
                (Datatype.to_string acc) (Datatype.to_string t))
        Datatype.Null branch_types

let no_outer (r : Expr.col_ref) : Datatype.t =
  Errors.name_errorf "outer reference %s in a non-correlated context"
    (Expr.col_ref_to_string r)

(** Infer against a concrete input schema; outer references are resolved
    by searching [outer_schemas] innermost-first. *)
let infer_with_schema ?(outer_schemas : Schema.t list = []) (schema : Schema.t)
    (e : Expr.t) : Datatype.t =
  let typeof_col (r : Expr.col_ref) =
    (Schema.get schema (Schema.find ?qual:r.Expr.qual r.Expr.name schema))
      .Schema.ctype
  in
  let typeof_outer (r : Expr.col_ref) =
    let rec go = function
      | [] -> no_outer r
      | s :: rest -> (
          match Schema.find_all ?qual:r.Expr.qual r.Expr.name s with
          | [ i ] -> (Schema.get s i).Schema.ctype
          | [] -> go rest
          | _ :: _ :: _ ->
              Errors.name_errorf "ambiguous outer reference %s"
                (Expr.col_ref_to_string r))
    in
    go outer_schemas
  in
  infer ~typeof_col ~typeof_outer e

(** Type of an aggregate over a given input schema. *)
let infer_agg ?outer_schemas schema (a : Expr.agg) : Datatype.t =
  let arg_ty =
    Option.map (infer_with_schema ?outer_schemas schema) a.Expr.arg
  in
  Agg_state.result_type a arg_ty

(* Expression evaluation.

   Booleans follow SQL three-valued logic: a predicate yields
   [Value.Bool _] or [Value.Null] (= unknown).  [truth] converts such a
   value into a [Truth.t] for WHERE-clause filtering.

   Two entry points:
   - [eval] interprets the AST directly (used by the reference evaluator);
   - [compile] pre-resolves column references against a fixed input schema
     and returns a closure, which is what the physical operators use on
     their hot paths. *)


(** Enclosing Apply frames, innermost first.  Each frame is the schema and
    current row of an outer input that a correlated inner plan may
    reference via [Expr.Outer]. *)
type frames = (Schema.t * Tuple.t) list

let truth (v : Value.t) : Truth.t =
  match v with
  | Value.Bool true -> Truth.True
  | Value.Bool false -> Truth.False
  | Value.Null -> Truth.Unknown
  | v ->
      Errors.type_errorf "predicate evaluated to non-boolean %s"
        (Value.to_string v)

let of_truth : Truth.t -> Value.t = function
  | Truth.True -> Value.Bool true
  | Truth.False -> Value.Bool false
  | Truth.Unknown -> Value.Null

let lookup_frames (r : Expr.col_ref) (frames : frames) =
  let rec go = function
    | [] ->
        Errors.name_errorf "unresolved outer reference %s"
          (Expr.col_ref_to_string r)
    | (schema, tuple) :: rest -> (
        match Schema.find_all ?qual:r.Expr.qual r.Expr.name schema with
        | [ i ] -> Tuple.get tuple i
        | [] -> go rest
        | _ :: _ :: _ ->
            Errors.name_errorf "ambiguous outer reference %s"
              (Expr.col_ref_to_string r))
  in
  go frames

let apply_binop (op : Expr.binop) (a : Value.t) (b : Value.t) : Value.t =
  match op with
  | Expr.Add -> Value.add a b
  | Expr.Sub -> Value.sub a b
  | Expr.Mul -> Value.mul a b
  | Expr.Div -> Value.div a b
  | Expr.Concat -> Value.concat a b
  | Expr.Eq -> of_truth (Value.eq a b)
  | Expr.Neq -> of_truth (Value.neq a b)
  | Expr.Lt -> of_truth (Value.lt a b)
  | Expr.Lte -> of_truth (Value.lte a b)
  | Expr.Gt -> of_truth (Value.gt a b)
  | Expr.Gte -> of_truth (Value.gte a b)
  | Expr.Nulleq -> Value.Bool (Value.equal_total a b)
  | Expr.And -> of_truth (Truth.and_ (truth a) (truth b))
  | Expr.Or -> of_truth (Truth.or_ (truth a) (truth b))

let apply_unop (op : Expr.unop) (a : Value.t) : Value.t =
  match op with
  | Expr.Neg -> Value.neg a
  | Expr.Not -> of_truth (Truth.not_ (truth a))
  | Expr.Is_null -> Value.Bool (Value.is_null a)
  | Expr.Is_not_null -> Value.Bool (not (Value.is_null a))

(* Short-circuiting for AND/OR matters only for efficiency, not
   semantics, because expressions are pure; we still avoid evaluating the
   right side when the left side decides the answer. *)

let rec eval ~(frames : frames) (schema : Schema.t) (tuple : Tuple.t)
    (e : Expr.t) : Value.t =
  match e with
  | Expr.Col r -> Tuple.get tuple (Schema.find ?qual:r.Expr.qual r.Expr.name schema)
  | Expr.Outer r -> lookup_frames r frames
  | Expr.Lit v -> v
  | Expr.Unary (op, a) -> apply_unop op (eval ~frames schema tuple a)
  | Expr.Binary (Expr.And, a, b) -> (
      match truth (eval ~frames schema tuple a) with
      | Truth.False -> Value.Bool false
      | ta ->
          of_truth
            (Truth.and_ ta (truth (eval ~frames schema tuple b))))
  | Expr.Binary (Expr.Or, a, b) -> (
      match truth (eval ~frames schema tuple a) with
      | Truth.True -> Value.Bool true
      | ta -> of_truth (Truth.or_ ta (truth (eval ~frames schema tuple b))))
  | Expr.Binary (op, a, b) ->
      apply_binop op
        (eval ~frames schema tuple a)
        (eval ~frames schema tuple b)
  | Expr.Case (whens, els) -> (
      let rec go = function
        | [] -> (
            match els with
            | None -> Value.Null
            | Some d -> eval ~frames schema tuple d)
        | (c, v) :: rest ->
            if Truth.to_bool (truth (eval ~frames schema tuple c)) then
              eval ~frames schema tuple v
            else go rest
      in
      go whens)

(** Evaluate a predicate to a [Truth.t]. *)
let eval_pred ~frames schema tuple e = truth (eval ~frames schema tuple e)

(* ---------- compiled form ---------- *)

type compiled = frames -> Tuple.t -> Value.t

let rec compile (schema : Schema.t) (e : Expr.t) : compiled =
  match e with
  | Expr.Col r ->
      let i = Schema.find ?qual:r.Expr.qual r.Expr.name schema in
      fun _ t -> Tuple.get t i
  | Expr.Outer r -> fun frames _ -> lookup_frames r frames
  | Expr.Lit v -> fun _ _ -> v
  | Expr.Unary (op, a) ->
      let ca = compile schema a in
      fun f t -> apply_unop op (ca f t)
  | Expr.Binary (Expr.And, a, b) ->
      let ca = compile schema a and cb = compile schema b in
      fun f t -> (
        match truth (ca f t) with
        | Truth.False -> Value.Bool false
        | ta -> of_truth (Truth.and_ ta (truth (cb f t))))
  | Expr.Binary (Expr.Or, a, b) ->
      let ca = compile schema a and cb = compile schema b in
      fun f t -> (
        match truth (ca f t) with
        | Truth.True -> Value.Bool true
        | ta -> of_truth (Truth.or_ ta (truth (cb f t))))
  | Expr.Binary (op, a, b) ->
      let ca = compile schema a and cb = compile schema b in
      fun f t -> apply_binop op (ca f t) (cb f t)
  | Expr.Case (whens, els) ->
      let cw =
        List.map (fun (c, v) -> (compile schema c, compile schema v)) whens
      in
      let ce = Option.map (compile schema) els in
      fun f t ->
        let rec go = function
          | [] -> ( match ce with None -> Value.Null | Some d -> d f t)
          | (c, v) :: rest ->
              if Truth.to_bool (truth (c f t)) then v f t else go rest
        in
        go cw

(** Compile a predicate to a boolean test under WHERE semantics
    (unknown = reject). *)
let compile_pred schema e : frames -> Tuple.t -> bool =
  let c = compile schema e in
  fun f t -> Truth.to_bool (truth (c f t))

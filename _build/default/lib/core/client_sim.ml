(* Client-side simulation of GApply (paper Section 5.1).

   The paper could not control SQL Server 2000's use of its internal
   GApply operator, so it simulated the operator from the client:

   - Partition phase: materialise the outer query into a temp table
     whose non-grouping columns are concatenated into a single
     [misccols] string (made unique with a row counter, standing in for
     the paper's bit-xor trick), then run

       select <gcols>, count(distinct misccols) from tmp group by <gcols>

     which forces the server to manage every row's payload, simulating
     the partition phase's hashing;

   - an over-estimate correction query

       select count(distinct misccols) from tmp

     measures the extra work (hashing + distinctness checks) that a real
     partition phase would not do;

   - Execution phase: for each distinct grouping value, extract that
     group's rows into a second temp table and run the per-group query
     on it.

   We reproduce the procedure faithfully against our own engine so the
   Q4 "client-side vs. server-side" overhead experiment (the paper
   measured ~20%) can be rerun. *)

type timings = {
  outer_time : float;       (* materialising the outer query *)
  partition_time : float;   (* the count(distinct misccols) groupby *)
  overestimate_time : float;(* the correction query *)
  execute_time : float;     (* per-group extraction + per-group query *)
}

let total t =
  t.outer_time +. t.partition_time -. t.overestimate_time +. t.execute_time

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Build the simulation temp table: grouping columns + misccols. *)
let misc_schema gcol_cols =
  Schema.of_list
    (gcol_cols @ [ Schema.column "misccols" Datatype.Str ])

let misc_row idxs counter (row : Tuple.t) =
  let keys = List.map (fun i -> Tuple.get row i) idxs in
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i v ->
      if not (List.mem i idxs) then begin
        Buffer.add_string buf (Value.to_string v);
        Buffer.add_char buf '|'
      end)
    (row : Tuple.t :> Value.t array);
  (* the row counter plays the role of the paper's bit-xor with a
     counter: it forces all misccols values to be distinct so the server
     must retain and compare every one *)
  Buffer.add_string buf (string_of_int counter);
  Tuple.of_list (keys @ [ Value.Str (Buffer.contents buf) ])

(** Run a GApply plan through the client-side protocol, returning the
    result together with the phase timings. *)
let run (catalog : Catalog.t) (plan : Plan.t) : Relation.t * timings =
  match plan with
  | Plan.G_apply { gcols; var; outer; pgq; _ } ->
      let config = Compile.default_config in
      (* 1. run the outer query and materialise it (client side) *)
      let outer_rel, outer_time =
        time (fun () -> Executor.run ~config catalog outer)
      in
      let oschema = Relation.schema outer_rel in
      let idxs =
        List.map
          (fun (r : Expr.col_ref) ->
            Schema.find ?qual:r.Expr.qual r.Expr.name oschema)
          gcols
      in
      let gcol_cols = List.map (Schema.get oschema) idxs in
      (* 2. partition phase: group by gcols, count(distinct misccols) *)
      let tmp_schema = misc_schema gcol_cols in
      let counter = ref 0 in
      let tmp_rows =
        Array.map
          (fun row ->
            incr counter;
            misc_row idxs !counter row)
          (Relation.rows_array outer_rel)
      in
      let tmp_rel = Relation.of_array tmp_schema tmp_rows in
      let partition_plan =
        Plan.group_by
          (List.map
             (fun (c : Schema.column) -> Expr.col c.Schema.cname)
             gcol_cols)
          [ (Expr.agg ~distinct:true Expr.Count
               (Some (Expr.column "misccols")), "n") ]
          (Plan.group_scan ~var:"__client_tmp" tmp_schema)
      in
      let env =
        Env.bind_group "__client_tmp" tmp_rel (Env.make catalog)
      in
      let partition_result, partition_time =
        time (fun () -> Executor.run_in ~config env partition_plan)
      in
      (* 3. over-estimate correction *)
      let over_plan =
        Plan.aggregate
          [ (Expr.agg ~distinct:true Expr.Count
               (Some (Expr.column "misccols")), "n") ]
          (Plan.group_scan ~var:"__client_tmp" tmp_schema)
      in
      let _, overestimate_time =
        time (fun () -> Executor.run_in ~config env over_plan)
      in
      (* 4. execution phase: the result of the outer query is stored in a
         second temp table *clustered by the grouping columns* (the paper
         extracts "an appropriate range of this temporary table" per
         group, which presumes clustering); each contiguous range is then
         copied out into a per-group temp relation and the PGQ runs on
         it *)
      let compiled_pgq = Compile.plan ~config pgq in
      let result_schema = Props.schema_of plan in
      let (results : Tuple.t list ref) = ref [] in
      let _, execute_time =
        time (fun () ->
            let clustered =
              Relation.sort_by
                (fun a b ->
                  Tuple.compare (Tuple.project idxs a) (Tuple.project idxs b))
                outer_rel
            in
            let rows = Relation.rows_array clustered in
            let n = Array.length rows in
            let i = ref 0 in
            while !i < n do
              let key = Tuple.project idxs rows.(!i) in
              let start = !i in
              while
                !i < n && Tuple.equal (Tuple.project idxs rows.(!i)) key
              do
                incr i
              done;
              (* range extraction: copy the run into a temp relation *)
              let group_rows =
                Array.init (!i - start) (fun j ->
                    Tuple.copy rows.(start + j))
              in
              let group_rel = Relation.of_array oschema group_rows in
              let genv = Env.bind_group var group_rel (Env.make catalog) in
              Cursor.iter
                (fun row -> results := Tuple.concat key row :: !results)
                (compiled_pgq.Compile.run genv)
            done)
      in
      ignore partition_result;
      let rel =
        Relation.of_array result_schema (Array.of_list (List.rev !results))
      in
      ( rel,
        { outer_time; partition_time; overestimate_time; execute_time } )
  | _ -> Errors.plan_errorf "Client_sim.run: plan is not a GApply"

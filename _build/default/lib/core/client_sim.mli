(** Client-side simulation of GApply (paper Section 5.1).

    Reproduces the protocol the paper used because SQL Server 2000's
    internal GApply could not be invoked directly: materialise the outer
    query into a temp table, simulate the partition phase with a
    group-by counting distinct concatenated payloads (plus the
    over-estimate correction query), then extract each group's range
    from a clustered temp table and run the per-group query on it. *)

type timings = {
  outer_time : float;        (** materialising the outer query *)
  partition_time : float;    (** the count(distinct misccols) groupby *)
  overestimate_time : float; (** the correction query *)
  execute_time : float;      (** per-group extraction + per-group query *)
}

val total : timings -> float
(** The paper's accounting:
    outer + partition - overestimate + execute. *)

val run : Catalog.t -> Plan.t -> Relation.t * timings
(** Run a GApply plan through the client-side protocol.
    @raise Errors.Plan_error when the plan's root is not a GApply. *)

(* The paper's experimental workload (Section 5).

   Queries Q1-Q4 are provided in both formulations:
   - [qN_gapply]: the Section 3.1 syntax (one grouped pass, GApply);
   - [qN_baseline]: the "sorted outer union" SQL of Section 2 that a
     traditional engine would run — redundant joins, correlated
     subqueries, and ORDER BY for the constant-space tagger.

   The [ruleN_*] families are the parameterized queries used to
   reproduce Table 1: for each rule, a query family with a swept
   parameter whose value moves the rule between winning and losing. *)

(* ---------- Q1: part names/prices plus the per-supplier average ------ *)

let q1_gapply =
  "select gapply(select p_name, p_retailprice, null as avgprice from \
   tmpsupp union all select null, null, avg(p_retailprice) from tmpsupp) \
   from partsupp, part where ps_partkey = p_partkey group by ps_suppkey \
   : tmpsupp"

let q1_baseline =
  "(select ps_suppkey, p_name, p_retailprice, null as avgprice from \
   partsupp, part where ps_partkey = p_partkey union all select \
   ps_suppkey, null, null, avg(p_retailprice) from partsupp, part where \
   ps_partkey = p_partkey group by ps_suppkey) order by ps_suppkey"

(* ---------- Q2: counts of parts above/below the average ------------- *)

(* The decorrelated baseline is what a traditional optimizer (e.g. SQL
   Server 2000) would actually run for the Section 2 SQL: the average is
   computed once per supplier by a groupby and re-joined — still paying
   the redundant partsupp-part joins the paper criticises.  The verbatim
   correlated formulation from the paper is kept as [q2_correlated]; a
   naive engine that does not decorrelate executes the subquery per row
   and is far slower than anything in Figure 8. *)

let q2_gapply =
  "select gapply(select count(*) as cnt_above, null as cnt_below from \
   tmpsupp where p_retailprice >= (select avg(p_retailprice) from \
   tmpsupp) union all select null, count(*) from tmpsupp where \
   p_retailprice < (select avg(p_retailprice) from tmpsupp)) from \
   partsupp, part where ps_partkey = p_partkey group by ps_suppkey : \
   tmpsupp"

let q2_correlated =
  "(select ps_suppkey, count(*) as cnt_above, null as cnt_below from \
   partsupp ps1, part where p_partkey = ps_partkey and p_retailprice >= \
   (select avg(p_retailprice) from partsupp, part where p_partkey = \
   ps_partkey and ps_suppkey = ps1.ps_suppkey) group by ps_suppkey union \
   all select ps_suppkey, null, count(*) from partsupp ps2, part where \
   p_partkey = ps_partkey and p_retailprice < (select avg(p_retailprice) \
   from partsupp, part where p_partkey = ps_partkey and ps_suppkey = \
   ps2.ps_suppkey) group by ps_suppkey) order by ps_suppkey"

let q2_avg_subquery =
  "(select ps_suppkey, avg(p_retailprice) from partsupp, part where \
   p_partkey = ps_partkey group by ps_suppkey) as t(k, avgp)"

let q2_baseline =
  Printf.sprintf
    "(select pp.ps_suppkey, count(*) as cnt_above, null as cnt_below from \
     partsupp pp, part, %s where pp.ps_partkey = p_partkey and \
     pp.ps_suppkey = t.k and p_retailprice >= t.avgp group by \
     pp.ps_suppkey union all select pp.ps_suppkey, null, count(*) from \
     partsupp pp, part, %s where pp.ps_partkey = p_partkey and \
     pp.ps_suppkey = t.k and p_retailprice < t.avgp group by \
     pp.ps_suppkey) order by ps_suppkey"
    q2_avg_subquery q2_avg_subquery

(* ---------- Q3: high-end / low-end part prices ----------------------- *)

(* high-end: above [hi_frac] of the per-supplier maximum;
   low-end: below [lo_mult] times the per-supplier minimum. *)

let q3_gapply ?(hi_frac = 0.8) ?(lo_mult = 1.25) () =
  Printf.sprintf
    "select gapply(select p_name, p_retailprice, 'high' as price_band \
     from tmpsupp where p_retailprice >= %g * (select \
     max(p_retailprice) from tmpsupp) union all select p_name, \
     p_retailprice, 'low' from tmpsupp where p_retailprice <= %g * \
     (select min(p_retailprice) from tmpsupp)) from partsupp, part where \
     ps_partkey = p_partkey group by ps_suppkey : tmpsupp"
    hi_frac lo_mult

let q3_correlated ?(hi_frac = 0.8) ?(lo_mult = 1.25) () =
  Printf.sprintf
    "(select ps_suppkey, p_name, p_retailprice, 'high' as price_band \
     from partsupp ps1, part where p_partkey = ps_partkey and \
     p_retailprice >= %g * (select max(p_retailprice) from partsupp, \
     part where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey) \
     union all select ps_suppkey, p_name, p_retailprice, 'low' from \
     partsupp ps2, part where p_partkey = ps_partkey and p_retailprice \
     <= %g * (select min(p_retailprice) from partsupp, part where \
     p_partkey = ps_partkey and ps_suppkey = ps2.ps_suppkey)) order by \
     ps_suppkey"
    hi_frac lo_mult

let q3_baseline ?(hi_frac = 0.8) ?(lo_mult = 1.25) () =
  let extreme_subquery fn =
    Printf.sprintf
      "(select ps_suppkey, %s(p_retailprice) from partsupp, part where \
       p_partkey = ps_partkey group by ps_suppkey) as t(k, ext)"
      fn
  in
  Printf.sprintf
    "(select pp.ps_suppkey, p_name, p_retailprice, 'high' as price_band \
     from partsupp pp, part, %s where pp.ps_partkey = p_partkey and \
     pp.ps_suppkey = t.k and p_retailprice >= %g * t.ext union all \
     select pp.ps_suppkey, p_name, p_retailprice, 'low' from partsupp \
     pp, part, %s where pp.ps_partkey = p_partkey and pp.ps_suppkey = \
     t.k and p_retailprice <= %g * t.ext) order by ps_suppkey"
    (extreme_subquery "max") hi_frac (extreme_subquery "min") lo_mult

(* ---------- Q4: per (supplier, size) above-average parts ------------- *)

let q4_gapply =
  "select gapply(select p_name, p_retailprice from tmpsupp where \
   p_retailprice > (select avg(p_retailprice) from tmpsupp)) from \
   partsupp, part where ps_partkey = p_partkey group by ps_suppkey, \
   p_size : tmpsupp"

let q4_baseline =
  "select tmp.ps_suppkey, tmp.p_size, p_name, p_retailprice from (select \
   ps_suppkey, p_size, avg(p_retailprice) from partsupp, part where \
   p_partkey = ps_partkey group by ps_suppkey, p_size) as \
   tmp(ps_suppkey, p_size, avgprice), partsupp, part where ps_partkey = \
   p_partkey and partsupp.ps_suppkey = tmp.ps_suppkey and part.p_size = \
   tmp.p_size and p_retailprice > tmp.avgprice order by tmp.ps_suppkey"

let figure8_queries =
  [
    ("Q1", q1_gapply, q1_baseline);
    ("Q2", q2_gapply, q2_baseline);
    ("Q3", q3_gapply (), q3_baseline ());
    ("Q4", q4_gapply, q4_baseline);
  ]

(** The verbatim correlated formulations of Section 2, for the extra
    "naive engine without decorrelation" series. *)
let figure8_correlated =
  [ ("Q2", q2_gapply, q2_correlated); ("Q3", q3_gapply (), q3_correlated ()) ]

(* ---------- Table 1 rule families ------------------------------------ *)

(* Selection before GApply: the per-group query touches only parts
   cheaper than [price_bound]; the covering range filters the outer
   input.  The parameter sweeps the bound (and with it the selectivity;
   prices run 900..2100 at small scales). *)
let rule_selection_query ~price_bound =
  Printf.sprintf
    "select gapply(select p_name, p_retailprice from g where \
     p_retailprice < %g) from partsupp, part where ps_partkey = \
     p_partkey group by ps_suppkey : g"
    price_bound

(* Projection before GApply: the per-group query needs [width] of the
   part columns; everything else can be cut from the outer input. *)
let rule_projection_query ~width =
  let cols =
    [ "p_retailprice"; "p_size"; "p_partkey"; "p_name"; "p_brand" ]
  in
  let used = List.filteri (fun i _ -> i < width) cols in
  Printf.sprintf
    "select gapply(select %s from g where p_retailprice < 100000) from \
     partsupp, part, supplier where ps_partkey = p_partkey and \
     ps_suppkey = s_suppkey group by ps_suppkey : g"
    (String.concat ", " used)

(* GApply to groupby: a plain aggregation per group; grouping columns
   control the group count. *)
let rule_groupby_query ~keys =
  Printf.sprintf
    "select gapply(select avg(p_retailprice), count(*) from g) from \
     partsupp, part where ps_partkey = p_partkey group by %s : g"
    keys

(* Group selection, existential (paper Section 4.2 / Figure 5): return
   suppliers (their whole element, supplier attributes included) that
   supply some part priced above [price_bound].  The supplier join makes
   the groups wide — constructing them only to discard them is the cost
   the rewrite avoids. *)
let rule_exists_query ~price_bound =
  Printf.sprintf
    "select gapply(select * from g where exists (select * from g where \
     p_retailprice > %g)) from partsupp, part, supplier where ps_partkey \
     = p_partkey and ps_suppkey = s_suppkey group by ps_suppkey : g"
    price_bound

(* Group selection, aggregate: suppliers whose average part price
   exceeds [avg_bound]. *)
let rule_aggregate_selection_query ~avg_bound =
  Printf.sprintf
    "select gapply(select * from g where (select avg(p_retailprice) from \
     g) > %g) from partsupp, part, supplier where ps_partkey = p_partkey \
     and ps_suppkey = s_suppkey group by ps_suppkey : g"
    avg_bound

(* Invariant grouping (Figure 7): per supplier, the supplier name and its
   cheapest parts; the supplier join can move above the GApply.  The
   price bound controls how much work the per-group query does. *)
let rule_invariant_query ~price_bound =
  Printf.sprintf
    "select gapply(select s_name, p_name, p_retailprice from g where \
     p_retailprice = (select min(p_retailprice) from g) and \
     p_retailprice < %g) from partsupp, part, supplier where ps_partkey \
     = p_partkey and ps_suppkey = s_suppkey group by ps_suppkey : g"
    price_bound

(* The rule sweep table used by the Table 1 bench: rule name, the
   optimizer rule to force, and the (label, SQL) instances. *)
let table1_sweeps () =
  [
    ( "Placing Selection Before GApply",
      "selection-before-gapply",
      List.map
        (fun b -> (Printf.sprintf "bound=%g" b, rule_selection_query ~price_bound:b))
        [ 902.; 905.; 910.; 950.; 1000.; 1200.; 1500.; 2200. ] );
    ( "Placing Projection Before GApply",
      "projection-before-gapply",
      List.map
        (fun w -> (Printf.sprintf "width=%d" w, rule_projection_query ~width:w))
        [ 1; 2; 3; 4 ] );
    ( "Converting GApply To groupby",
      "gapply-to-groupby",
      List.map
        (fun k -> ("keys=" ^ k, rule_groupby_query ~keys:k))
        [ "ps_suppkey"; "p_size"; "ps_suppkey, p_size" ] );
    ( "Group Selection: Exists",
      "group-selection-exists",
      List.map
        (fun b -> (Printf.sprintf "bound=%g" b, rule_exists_query ~price_bound:b))
        [ 2095.; 1900.; 1850.; 1800.; 1500.; 1000. ] );
    ( "Group Selection: Aggregate",
      "group-selection-aggregate",
      List.map
        (fun b ->
          (Printf.sprintf "bound=%g" b,
           rule_aggregate_selection_query ~avg_bound:b))
        [ 1590.; 1550.; 1500.; 1400.; 1200. ] );
    ( "Invariant Grouping",
      "invariant-grouping",
      List.map
        (fun b -> (Printf.sprintf "bound=%g" b, rule_invariant_query ~price_bound:b))
        [ 1000.; 1500.; 2200. ] );
  ]

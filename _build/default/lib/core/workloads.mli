(** The paper's experimental workload (Section 5).

    Queries Q1-Q4 come in both formulations: [qN_gapply] (the Section
    3.1 syntax — one grouped pass) and [qN_baseline] (the traditional
    sorted-outer-union SQL a decorrelating engine would run).  The
    verbatim correlated Section 2 SQL for Q2/Q3 is kept separately; the
    [rule_*] families parameterize the Table 1 sweeps. *)

val q1_gapply : string
val q1_baseline : string

val q2_gapply : string
val q2_baseline : string
val q2_correlated : string

val q3_gapply : ?hi_frac:float -> ?lo_mult:float -> unit -> string
val q3_baseline : ?hi_frac:float -> ?lo_mult:float -> unit -> string
val q3_correlated : ?hi_frac:float -> ?lo_mult:float -> unit -> string

val q4_gapply : string
val q4_baseline : string

val figure8_queries : (string * string * string) list
(** (name, gapply formulation, baseline formulation) for Q1-Q4. *)

val figure8_correlated : (string * string * string) list
(** (name, gapply formulation, verbatim correlated formulation). *)

(** {1 Table 1 rule-sweep families} *)

val rule_selection_query : price_bound:float -> string
val rule_projection_query : width:int -> string
val rule_groupby_query : keys:string -> string
val rule_exists_query : price_bound:float -> string
val rule_aggregate_selection_query : avg_bound:float -> string
val rule_invariant_query : price_bound:float -> string

val table1_sweeps : unit -> (string * string * (string * string) list) list
(** (paper rule label, optimizer rule name, (parameter label, SQL)
    instances). *)

lib/core/workloads.mli:

lib/core/client_sim.mli: Catalog Plan Relation

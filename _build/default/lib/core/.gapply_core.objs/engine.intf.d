lib/core/engine.mli: Catalog Compile Plan Relation

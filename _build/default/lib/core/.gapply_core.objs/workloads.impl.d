lib/core/workloads.ml: List Printf String

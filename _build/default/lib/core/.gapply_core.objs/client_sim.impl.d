lib/core/client_sim.ml: Array Buffer Catalog Compile Cursor Datatype Env Errors Executor Expr List Plan Props Relation Schema Tuple Unix Value

lib/core/engine.ml: Buffer Catalog Compile Cost Errors Executor List Optimizer Plan Printf Relation Sql_binder Sql_parser Tpch_gen

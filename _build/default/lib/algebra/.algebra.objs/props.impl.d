lib/algebra/props.ml: Datatype Errors Expr Format Infer List Plan Schema String

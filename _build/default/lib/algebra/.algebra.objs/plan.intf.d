lib/algebra/plan.mli: Expr Format Schema

lib/algebra/props.mli: Format Plan Schema

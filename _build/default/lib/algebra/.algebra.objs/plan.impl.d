lib/algebra/plan.ml: Errors Expr Format List Option Printf Schema Stdlib String

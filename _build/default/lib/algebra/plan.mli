(** Logical plan algebra.

    The operator alphabet is the one used throughout the paper (Sections
    3-4): scan, select, project, join (inner), groupby, aggregate,
    distinct, orderby, union all, apply, exists — plus the paper's
    contribution, GApply.

    Plans are name-based: expressions refer to columns of the node's
    input by (optionally qualified) name, so optimizer rewrites never
    renumber positions; the physical compiler resolves names once. *)

type sort_dir = Asc | Desc

type fk_direction = Left_to_right | Right_to_left
(** Direction of a foreign-key join (paper Definition 2):
    [Left_to_right] means the left input holds the foreign key — every
    left row matches exactly one right row — the orientation the
    invariant-grouping rule requires. *)

type t =
  | Table_scan of { table : string; alias : string; schema : Schema.t }
  | Group_scan of { var : string; schema : Schema.t }
      (** leaf of a per-group query: reads the relation bound to the
          enclosing GApply's relation-valued variable *)
  | Select of { pred : Expr.t; input : t }
  | Project of { items : (Expr.t * string) list; input : t }
  | Join of { pred : Expr.t; fk : fk_direction option; left : t; right : t }
  | Group_by of {
      keys : Expr.col_ref list;
      aggs : (Expr.agg * string) list;
      input : t;
    }
  | Aggregate of { aggs : (Expr.agg * string) list; input : t }
      (** scalar aggregation: exactly one output row, even on empty
          input *)
  | Distinct of t
  | Order_by of { keys : (Expr.t * sort_dir) list; input : t }
  | Union_all of t list
  | Alias of { alias : string; input : t }
      (** re-qualify the input's columns under a derived-table alias;
          identity on rows *)
  | Apply of { outer : t; inner : t }
      (** for each outer row r, evaluate [inner] with r bound as an
          outer frame; output r concatenated with each inner row *)
  | Exists of { input : t; negated : bool }
      (** one empty-schema row iff [input] is non-empty (xor [negated]);
          meaningful as the inner child of [Apply] *)
  | G_apply of {
      gcols : Expr.col_ref list;
      var : string;
      outer : t;
      pgq : t;
      cluster : bool;
    }
      (** the paper's GApply(GCols, PGQ): partition [outer] on [gcols],
          run [pgq] per group with the group bound to [var], cross each
          result with the group key, union everything.  [cluster] asks
          the physical operator to emit groups in key order (the Section
          3.1 guarantee for gapply-syntax results). *)

(** {1 Constructors} *)

val table_scan : table:string -> alias:string -> Schema.t -> t
(** The schema is re-qualified under [alias]. *)

val group_scan : var:string -> Schema.t -> t
val select : Expr.t -> t -> t
val project : (Expr.t * string) list -> t -> t
val join : ?fk:fk_direction -> Expr.t -> t -> t -> t
val group_by : Expr.col_ref list -> (Expr.agg * string) list -> t -> t
val aggregate : (Expr.agg * string) list -> t -> t
val distinct : t -> t
val order_by : (Expr.t * sort_dir) list -> t -> t

val union_all : t list -> t
(** Flattens the single-branch case. @raise Invalid_argument on []. *)

val alias : string -> t -> t
val apply : t -> t -> t
val exists : ?negated:bool -> t -> t
val g_apply : gcols:Expr.col_ref list -> var:string -> outer:t -> pgq:t -> t

val g_apply_clustered :
  gcols:Expr.col_ref list -> var:string -> outer:t -> pgq:t -> t
(** Like {!g_apply} with the Section 3.1 clustering guarantee (used by
    the SQL binder for gapply-syntax queries). *)

(** {1 Traversals} *)

val children : t -> t list

val with_children : t -> t list -> t
(** @raise Errors.Plan_error on arity mismatch. *)

val rewrite_bottom_up : (t -> t) -> t -> t
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val node_count : t -> int
val contains_gapply : t -> bool
val contains_table_scan : t -> bool

val rewrite_exprs :
  f_expr:(Expr.t -> Expr.t) -> f_ref:(Expr.col_ref -> Expr.col_ref) -> t -> t
(** Rewrite every embedded expression ([f_expr]: predicates, projection
    items, aggregate arguments, order keys) and bare column-reference
    list ([f_ref]: group-by keys, GApply grouping columns), bottom-up. *)

val outer_refs : t -> Expr.col_ref list
(** All [Expr.Outer] references appearing anywhere in the plan. *)

val equal : t -> t -> bool
(** Structural equality. *)

(** {1 Printing} *)

val op_name : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Derived plan properties: output schemas and related utilities.

    [outer] parameters carry the schemas of enclosing Apply outer inputs
    so correlated expressions can be typed. *)

val schema_of : ?outer:Schema.t list -> Plan.t -> Schema.t
(** Output schema of a (sub)plan.
    @raise Errors.Name_error / Errors.Plan_error on unresolvable names
    or inconsistent arities. *)

val output_columns : ?outer:Schema.t list -> Plan.t -> string list

val group_var_schema : ?outer:Schema.t list -> Plan.t -> Schema.t
(** The schema a [Group_scan] for the given GApply should carry (= the
    schema of its outer input).
    @raise Errors.Plan_error when the plan is not a GApply. *)

val retarget_group_scans : var:string -> schema:Schema.t -> Plan.t -> Plan.t
(** Rewrite every [Group_scan] of [var] to carry [schema]; used by rules
    that change a GApply's outer schema.  Does not descend into nested
    GApply bodies that rebind the same variable. *)

val validate : ?outer:Schema.t list -> Plan.t -> Schema.t
(** Check resolvability and arities; returns the output schema. *)

val pp_plan_with_schema : Format.formatter -> Plan.t -> unit
(** Plan tree annotated with per-node schemas (EXPLAIN-style). *)

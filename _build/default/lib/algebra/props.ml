(* Derived plan properties: output schemas and output column names.

   [schema_of] recomputes the output schema of a (sub)plan.  The
   [outer] parameter carries the schemas of enclosing Apply outer inputs
   so that correlated expressions ([Expr.Outer]) can be typed. *)

let resolve_key schema (r : Expr.col_ref) : Schema.column =
  Schema.get schema (Schema.find ?qual:r.Expr.qual r.Expr.name schema)

let agg_schema ~outer input_schema aggs : Schema.column list =
  List.map
    (fun (a, name) ->
      Schema.column name (Infer.infer_agg ~outer_schemas:outer input_schema a))
    aggs

let rec schema_of ?(outer : Schema.t list = []) (plan : Plan.t) : Schema.t =
  match plan with
  | Plan.Table_scan { schema; _ } | Plan.Group_scan { schema; _ } -> schema
  | Plan.Select { input; _ }
  | Plan.Distinct input
  | Plan.Order_by { input; _ } ->
      schema_of ~outer input
  | Plan.Alias { alias; input } ->
      Schema.rename_source alias (schema_of ~outer input)
  | Plan.Project { items; input } ->
      let in_schema = schema_of ~outer input in
      Schema.of_list
        (List.map
           (fun (e, name) ->
             (* a pure pass-through item (bare column kept under its own
                name) keeps its qualifier, so enclosing operators can
                still resolve qualified references through projections *)
             let source =
               match e with
               | Expr.Col r when String.equal r.Expr.name name -> (
                   match Schema.find_all ?qual:r.Expr.qual name in_schema with
                   | [ i ] -> (Schema.get in_schema i).Schema.source
                   | _ -> None)
               | _ -> None
             in
             Schema.column ?source name
               (Infer.infer_with_schema ~outer_schemas:outer in_schema e))
           items)
  | Plan.Join { left; right; _ } ->
      Schema.concat (schema_of ~outer left) (schema_of ~outer right)
  | Plan.Group_by { keys; aggs; input } ->
      let in_schema = schema_of ~outer input in
      let key_cols = List.map (resolve_key in_schema) keys in
      Schema.of_list (key_cols @ agg_schema ~outer in_schema aggs)
  | Plan.Aggregate { aggs; input } ->
      let in_schema = schema_of ~outer input in
      Schema.of_list (agg_schema ~outer in_schema aggs)
  | Plan.Union_all branches -> (
      match branches with
      | [] -> Errors.plan_errorf "union all with no branches"
      | first :: rest ->
          let s0 = schema_of ~outer first in
          List.fold_left
            (fun acc branch ->
              let s = schema_of ~outer branch in
              if Schema.arity s <> Schema.arity acc then
                Errors.plan_errorf
                  "union all branches have arities %d and %d"
                  (Schema.arity acc) (Schema.arity s)
              else
                Schema.of_list
                  (List.map2
                     (fun (a : Schema.column) (b : Schema.column) ->
                       match Datatype.unify a.Schema.ctype b.Schema.ctype with
                       | Some t -> { a with Schema.ctype = t }
                       | None ->
                           Errors.plan_errorf
                             "union all column %s: incompatible types %s, %s"
                             a.Schema.cname
                             (Datatype.to_string a.Schema.ctype)
                             (Datatype.to_string b.Schema.ctype))
                     (Schema.to_list acc) (Schema.to_list s)))
            s0 rest)
  | Plan.Apply { outer = o; inner } ->
      let outer_schema = schema_of ~outer o in
      Schema.concat outer_schema
        (schema_of ~outer:(outer_schema :: outer) inner)
  | Plan.Exists _ -> Schema.empty
  | Plan.G_apply { gcols; outer = o; pgq; _ } ->
      let outer_schema = schema_of ~outer o in
      let key_cols = List.map (resolve_key outer_schema) gcols in
      Schema.of_list
        (key_cols @ Schema.to_list (schema_of ~outer pgq))

(** Output column names, in order. *)
let output_columns ?outer plan = Schema.names (schema_of ?outer plan)

(** The schema a [Group_scan] for the given GApply should carry: the
    schema of the GApply's outer input. *)
let group_var_schema ?(outer = []) (plan : Plan.t) =
  match plan with
  | Plan.G_apply { outer = o; _ } -> schema_of ~outer o
  | _ -> Errors.plan_errorf "group_var_schema: not a GApply node"

(** Rewrite every [Group_scan] for variable [var] in [pgq] to carry
    [schema].  Used by rules that change a GApply's outer schema (e.g.
    projection-before-GApply).  Does not descend into nested GApply
    bodies that rebind the same variable name. *)
let rec retarget_group_scans ~var ~schema (pgq : Plan.t) : Plan.t =
  match pgq with
  | Plan.Group_scan g when String.equal g.var var ->
      Plan.Group_scan { g with schema }
  | Plan.G_apply g when String.equal g.var var ->
      (* inner rebinding shadows [var]: only the outer side may refer to
         the enclosing variable *)
      Plan.G_apply
        { g with outer = retarget_group_scans ~var ~schema g.outer }
  | p ->
      Plan.with_children p
        (List.map (retarget_group_scans ~var ~schema) (Plan.children p))

(** Validate a plan: resolvable names, consistent arities.  Raises
    {!Errors.Plan_error} / {!Errors.Name_error} on failure, returns the
    output schema on success. *)
let validate ?outer plan = schema_of ?outer plan

let pp_plan_with_schema ppf plan =
  let rec go indent ~outer p =
    let schema =
      try Schema.to_string (schema_of ~outer p) with _ -> "(unresolved)"
    in
    Format.fprintf ppf "%s%s  : %s@\n"
      (String.make indent ' ')
      (Plan.op_name p) schema;
    match p with
    | Plan.Apply { outer = o; inner } ->
        go (indent + 2) ~outer o;
        go (indent + 2) ~outer:(schema_of ~outer o :: outer) inner
    | _ -> List.iter (go (indent + 2) ~outer) (Plan.children p)
  in
  go 0 ~outer:[] plan

(* Logical plan algebra.

   The operator alphabet is exactly the one used by the paper (Section 3
   and 4): scan, select, project, join (inner), groupby, aggregate,
   distinct, orderby, union all, apply, exists — plus the paper's
   contribution, GApply.

   Plans are *name-based*: expressions refer to columns of the node's
   input by (optionally qualified) name, so optimizer rewrites never have
   to renumber positions.  The physical compiler resolves names to
   positions once, at the end.

   [Group_scan] is the leaf of a per-group query (PGQ): it reads the
   relation bound to the GApply's relation-valued variable.  Its schema is
   fixed at construction (it equals the schema of the enclosing GApply's
   outer input) and is updated by rules that narrow the outer input. *)

type sort_dir = Asc | Desc

(** Direction of a foreign-key join, from the paper's Definition 2: a
    join is an FK join when the join condition equates a foreign key of
    one side with a key of the other.  [Left_to_right] means the left
    input holds the foreign key (every left row matches exactly one right
    row) — the orientation required by the invariant-grouping rule. *)
type fk_direction = Left_to_right | Right_to_left

type t =
  | Table_scan of { table : string; alias : string; schema : Schema.t }
  | Group_scan of { var : string; schema : Schema.t }
  | Select of { pred : Expr.t; input : t }
  | Project of { items : (Expr.t * string) list; input : t }
  | Join of { pred : Expr.t; fk : fk_direction option; left : t; right : t }
  | Group_by of {
      keys : Expr.col_ref list;
      aggs : (Expr.agg * string) list;
      input : t;
    }
  | Aggregate of { aggs : (Expr.agg * string) list; input : t }
      (** scalar aggregation: exactly one output row, even on empty input *)
  | Distinct of t
  | Order_by of { keys : (Expr.t * sort_dir) list; input : t }
  | Union_all of t list
  | Alias of { alias : string; input : t }
      (** re-qualify the input's columns under a derived-table alias;
          identity on rows (used for FROM-subqueries) *)
  | Apply of { outer : t; inner : t }
      (** for each outer row r, evaluate [inner] with r bound as an outer
          frame; output r concatenated with each inner row *)
  | Exists of { input : t; negated : bool }
      (** one empty-schema row if [input] is non-empty (or empty, when
          [negated]); only meaningful as the inner child of [Apply] *)
  | G_apply of {
      gcols : Expr.col_ref list;
      var : string;
      outer : t;
      pgq : t;
      cluster : bool;
    }
      (** the paper's GApply(GCols, PGQ): partition [outer] on [gcols],
          run [pgq] per group with the group bound to [var], cross each
          result with the group key, union everything.  [cluster] asks
          the physical operator to emit groups in key order — the
          Section 3.1 guarantee that gapply-syntax results are clustered
          by the grouping columns, making a partition operator on top
          redundant (sort partitioning gives it for free; hash
          partitioning orders the group list). *)

(* ---------- constructors ---------- *)

let table_scan ~table ~alias schema =
  Table_scan { table; alias; schema = Schema.rename_source alias schema }

let group_scan ~var schema = Group_scan { var; schema }
let select pred input = Select { pred; input }
let project items input = Project { items; input }
let join ?fk pred left right = Join { pred; fk; left; right }
let group_by keys aggs input = Group_by { keys; aggs; input }
let aggregate aggs input = Aggregate { aggs; input }
let distinct input = Distinct input
let order_by keys input = Order_by { keys; input }

let union_all = function
  | [] -> invalid_arg "Plan.union_all: no branches"
  | [ p ] -> p
  | ps -> Union_all ps

let alias alias input = Alias { alias; input }
let apply outer inner = Apply { outer; inner }
let exists ?(negated = false) input = Exists { input; negated }
let g_apply ~gcols ~var ~outer ~pgq =
  G_apply { gcols; var; outer; pgq; cluster = false }

(** Like {!g_apply} with the Section 3.1 clustering guarantee (used by
    the SQL binder for gapply-syntax queries). *)
let g_apply_clustered ~gcols ~var ~outer ~pgq =
  G_apply { gcols; var; outer; pgq; cluster = true }

(* ---------- traversals ---------- *)

let children = function
  | Table_scan _ | Group_scan _ -> []
  | Select { input; _ }
  | Project { input; _ }
  | Group_by { input; _ }
  | Aggregate { input; _ }
  | Distinct input
  | Order_by { input; _ }
  | Alias { input; _ }
  | Exists { input; _ } ->
      [ input ]
  | Join { left; right; _ } -> [ left; right ]
  | Apply { outer; inner } -> [ outer; inner ]
  | G_apply { outer; pgq; _ } -> [ outer; pgq ]
  | Union_all ps -> ps

let with_children plan new_children =
  match (plan, new_children) with
  | (Table_scan _ | Group_scan _), [] -> plan
  | Select s, [ input ] -> Select { s with input }
  | Project p, [ input ] -> Project { p with input }
  | Group_by g, [ input ] -> Group_by { g with input }
  | Aggregate a, [ input ] -> Aggregate { a with input }
  | Distinct _, [ input ] -> Distinct input
  | Order_by o, [ input ] -> Order_by { o with input }
  | Alias a, [ input ] -> Alias { a with input }
  | Exists e, [ input ] -> Exists { e with input }
  | Join j, [ left; right ] -> Join { j with left; right }
  | Apply _, [ outer; inner ] -> Apply { outer; inner }
  | G_apply g, [ outer; pgq ] -> G_apply { g with outer; pgq }
  | Union_all _, (_ :: _ as ps) -> Union_all ps
  | _ -> Errors.plan_errorf "Plan.with_children: arity mismatch"

(** Bottom-up rewriting: children first, then [f] on the rebuilt node. *)
let rec rewrite_bottom_up f plan =
  let plan' =
    with_children plan (List.map (rewrite_bottom_up f) (children plan))
  in
  f plan'

(** Pre-order fold over all nodes. *)
let rec fold f acc plan =
  List.fold_left (fold f) (f acc plan) (children plan)

let node_count plan = fold (fun n _ -> n + 1) 0 plan

(** Rewrite every expression and column reference embedded in the plan,
    bottom-up.  [f_expr] is applied to whole expressions (select/join
    predicates, projection items, aggregate arguments, order keys);
    [f_ref] to bare column-reference lists (group-by keys, GApply
    grouping columns). *)
let rewrite_exprs ~(f_expr : Expr.t -> Expr.t)
    ~(f_ref : Expr.col_ref -> Expr.col_ref) plan =
  let agg_map (a : Expr.agg) =
    { a with Expr.arg = Option.map f_expr a.Expr.arg }
  in
  rewrite_bottom_up
    (fun p ->
      match p with
      | Table_scan _ | Group_scan _ | Distinct _ | Alias _ | Exists _
      | Apply _ | Union_all _ ->
          p
      | Select s -> Select { s with pred = f_expr s.pred }
      | Project pr ->
          Project
            { pr with items = List.map (fun (e, n) -> (f_expr e, n)) pr.items }
      | Join j -> Join { j with pred = f_expr j.pred }
      | Group_by g ->
          Group_by
            {
              g with
              keys = List.map f_ref g.keys;
              aggs = List.map (fun (a, n) -> (agg_map a, n)) g.aggs;
            }
      | Aggregate a ->
          Aggregate
            { a with aggs = List.map (fun (x, n) -> (agg_map x, n)) a.aggs }
      | Order_by o ->
          Order_by
            { o with keys = List.map (fun (e, d) -> (f_expr e, d)) o.keys }
      | G_apply g -> G_apply { g with gcols = List.map f_ref g.gcols })
    plan

(** All [Expr.Outer] references appearing anywhere in the plan. *)
let outer_refs plan : Expr.col_ref list =
  let acc = ref [] in
  let note e = acc := Expr.outer_columns e @ !acc in
  ignore
    (rewrite_exprs
       ~f_expr:(fun e ->
         note e;
         e)
       ~f_ref:(fun r -> r)
       plan);
  List.rev !acc

let contains_table_scan plan =
  fold
    (fun acc p -> acc || match p with Table_scan _ -> true | _ -> false)
    false plan

let contains_gapply plan =
  fold (fun acc p -> acc || match p with G_apply _ -> true | _ -> false)
    false plan

(* Structural equality.  Plans contain only immutable structural data
   (no closures), so the polymorphic comparison is sound here. *)
let equal (a : t) (b : t) = Stdlib.compare a b = 0

(* ---------- operator names (for EXPLAIN and the optimizer log) ---------- *)

let op_name = function
  | Table_scan { table; alias; _ } ->
      if String.equal table alias then Printf.sprintf "scan(%s)" table
      else Printf.sprintf "scan(%s as %s)" table alias
  | Group_scan { var; _ } -> Printf.sprintf "group_scan($%s)" var
  | Select { pred; _ } -> Printf.sprintf "select[%s]" (Expr.to_string pred)
  | Project { items; _ } ->
      Printf.sprintf "project[%s]"
        (String.concat ", "
           (List.map
              (fun (e, n) ->
                let s = Expr.to_string e in
                if String.equal s n then s else s ^ " as " ^ n)
              items))
  | Join { pred; fk; _ } ->
      Printf.sprintf "join%s[%s]"
        (match fk with
        | None -> ""
        | Some Left_to_right -> "(fk->)"
        | Some Right_to_left -> "(<-fk)")
        (Expr.to_string pred)
  | Group_by { keys; aggs; _ } ->
      Printf.sprintf "groupby[%s; %s]"
        (String.concat ", " (List.map Expr.col_ref_to_string keys))
        (String.concat ", "
           (List.map
              (fun (a, n) -> Expr.agg_to_string a ^ " as " ^ n)
              aggs))
  | Aggregate { aggs; _ } ->
      Printf.sprintf "aggregate[%s]"
        (String.concat ", "
           (List.map
              (fun (a, n) -> Expr.agg_to_string a ^ " as " ^ n)
              aggs))
  | Distinct _ -> "distinct"
  | Alias { alias; _ } -> Printf.sprintf "alias(%s)" alias
  | Order_by { keys; _ } ->
      Printf.sprintf "orderby[%s]"
        (String.concat ", "
           (List.map
              (fun (e, d) ->
                Expr.to_string e
                ^ match d with Asc -> "" | Desc -> " desc")
              keys))
  | Union_all _ -> "union all"
  | Apply _ -> "apply"
  | Exists { negated; _ } -> if negated then "not exists" else "exists"
  | G_apply { gcols; var; _ } ->
      Printf.sprintf "gapply[%s : $%s]"
        (String.concat ", " (List.map Expr.col_ref_to_string gcols))
        var

let rec pp_tree ppf ~indent plan =
  Format.fprintf ppf "%s%s@\n" (String.make indent ' ') (op_name plan);
  List.iter (pp_tree ppf ~indent:(indent + 2)) (children plan)

let pp ppf plan = pp_tree ppf ~indent:0 plan
let to_string plan = Format.asprintf "%a" pp plan

(** A minimal XML document model with a serializer and an
    order-insensitive comparison (the paper assumes an unordered XML
    model, Section 2). *)

type t =
  | Element of string * (string * string) list * t list
      (** tag, attributes, children *)
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val escape : string -> string
(** XML-escape text content (angle brackets, ampersand, double quote). *)

val to_string : t -> string
(** Compact one-line serialization (self-closing empty elements). *)

val pp : Format.formatter -> t -> unit
(** Indented pretty-printing. *)

val canonicalize : t -> t
(** Sort sibling elements recursively — a normal form under the
    unordered XML model. *)

val equal_unordered : t -> t -> bool
(** Document equality up to reordering of siblings. *)

(* Arbitrary-depth XML views.

   The two-level publisher (Xml_view / Publish) covers the paper's
   Figure 1; real publishing schemas nest deeper (customer -> orders ->
   lineitems).  A deep view is a tree of element nodes; each node's SQL
   query must output its *full hierarchical key path* — the key columns
   of every ancestor plus its own — which is exactly what the sorted
   outer union encoding of [Shanmugasundaram et al.] requires for the
   constant-space tagger.

   Per-node derived aggregates (e.g. an order-total element under each
   customer) aggregate that node's rows grouped by the parent path; the
   outer-union strategy recomputes and regroups the node query for each
   of them, the GApply strategy folds them into one grouped pass. *)

type aggregate_spec = {
  a_fn : Expr.agg_fn;
  a_col : string;   (* aggregated column of this node's query *)
  a_tag : string;   (* output element tag, attached to the parent *)
}

type node = {
  n_tag : string;
  n_query : string;
      (* must output [n_path] (ancestor keys then own keys) and the
         field columns *)
  n_path : string list;
      (* full hierarchical key path: ancestors' key columns first, this
         node's own key columns last *)
  n_own_keys : int;
      (* how many trailing columns of [n_path] are this node's own *)
  n_fields : (string * string) list;  (* (column, element tag) *)
  n_aggregates : aggregate_spec list;
  n_children : node list;
}

type t = { root_tag : string; top : node }

let rec validate_node ~(ancestor_path : string list) (n : node) =
  let prefix_len = List.length n.n_path - n.n_own_keys in
  if n.n_own_keys <= 0 then
    Errors.plan_errorf "view node <%s> must have its own key columns"
      n.n_tag;
  if prefix_len <> List.length ancestor_path then
    Errors.plan_errorf
      "view node <%s>: key path has %d ancestor columns, expected %d"
      n.n_tag prefix_len
      (List.length ancestor_path);
  List.iter (validate_node ~ancestor_path:n.n_path) n.n_children

let validate (v : t) =
  validate_node ~ancestor_path:[] v.top;
  v

(** A three-level view over the TPC-H order-processing tables:
    customers, their orders, and each order's lineitems, with an
    order-count under each customer and a revenue total under each
    order. *)
let customer_orders =
  validate
    {
      root_tag = "customers";
      top =
        {
          n_tag = "customer";
          n_query = "select c_custkey, c_name, c_acctbal from customer";
          n_path = [ "c_custkey" ];
          n_own_keys = 1;
          n_fields = [ ("c_name", "name"); ("c_acctbal", "acctbal") ];
          n_aggregates = [];
          n_children =
            [
              {
                n_tag = "order";
                n_query =
                  "select o_custkey, o_orderkey, o_orderdate, \
                   o_totalprice from orders";
                n_path = [ "o_custkey"; "o_orderkey" ];
                n_own_keys = 1;
                n_fields =
                  [ ("o_orderdate", "date"); ("o_totalprice", "total") ];
                n_aggregates =
                  [ { a_fn = Expr.Count; a_col = "o_orderkey";
                      a_tag = "order_count" } ];
                n_children =
                  [
                    {
                      n_tag = "lineitem";
                      n_query =
                        "select o_custkey, l_orderkey, l_linenumber, \
                         l_quantity, l_extendedprice from lineitem, \
                         orders where l_orderkey = o_orderkey";
                      n_path =
                        [ "o_custkey"; "l_orderkey"; "l_linenumber" ];
                      n_own_keys = 1;
                      n_fields =
                        [
                          ("l_quantity", "quantity");
                          ("l_extendedprice", "price");
                        ];
                      n_aggregates =
                        [
                          { a_fn = Expr.Sum; a_col = "l_extendedprice";
                            a_tag = "revenue" };
                          { a_fn = Expr.Count; a_col = "l_linenumber";
                            a_tag = "line_count" };
                        ];
                      n_children = [];
                    };
                  ];
              };
            ];
        };
    }

(* A typed FLWR (For-Let-Where-Return) subset over XML views.

   This models the XQuery queries the paper uses over the Figure 1 view:

   - Q1-style element reconstruction with nested children and aggregates:
       For $s in /doc(tpch.xml)/suppliers/supplier
       Return <ret> $s/..., <parts> For $p in $s/part ... </parts>,
              avg($s/part/p_retailprice) </ret>
   - object selection by an existential child predicate (Section 4.2):
       For $s ... Where $s/part[p_retailprice > 1000] Return $s
   - object selection by an aggregate predicate:
       For $s ... Where avg($s/part/p_retailprice) > 10000 Return $s

   [compile] lowers a query to a {!Publish.spec}, which both execution
   strategies (sorted outer union vs. GApply) can run; [to_xquery]
   renders the query in XQuery-like concrete syntax for display. *)

type return_item =
  | Parent_fields
      (** the parent element's own fields ($s/s_suppkey, ...) *)
  | Nested_children of string
      (** a nested For over the child with the given tag *)
  | Child_aggregate of Expr.agg_fn * string * string * string
      (** fn, child tag, child column, output element tag *)

type predicate =
  | Some_child of string * string * Expr.binop * float
      (** child tag, column, comparison, constant:
          $s/<child>[<column> op <const>] *)
  | Child_agg_cmp of Expr.agg_fn * string * string * Expr.binop * float
      (** fn(child column) op const *)

type t = {
  view : Xml_view.t;
  where : predicate option;
  returns : return_item list;
}

let make ?where ~returns view = { view; where; returns }

let child_index (v : Xml_view.t) tag =
  let rec go i = function
    | [] -> Errors.name_errorf "view has no child element <%s>" tag
    | (c : Xml_view.child_spec) :: rest ->
        if String.equal c.Xml_view.c_tag tag then i else go (i + 1) rest
  in
  go 0 v.Xml_view.children

(** Lower to a publishing spec. *)
let compile (q : t) : Publish.spec =
  let v = q.view in
  (* keep only the children actually returned *)
  let kept_tags =
    List.filter_map
      (function Nested_children tag -> Some tag | _ -> None)
      q.returns
  in
  let kept_children =
    List.filter
      (fun (c : Xml_view.child_spec) ->
        List.mem c.Xml_view.c_tag kept_tags)
      v.Xml_view.children
  in
  let view' = { v with Xml_view.children = kept_children } in
  let reindex tag =
    let rec go i = function
      | [] -> Errors.name_errorf "child <%s> is not returned by the query" tag
      | (c : Xml_view.child_spec) :: rest ->
          if String.equal c.Xml_view.c_tag tag then i else go (i + 1) rest
    in
    go 0 kept_children
  in
  let derived =
    List.filter_map
      (function
        | Child_aggregate (fn, tag, col, out_tag) ->
            Some
              {
                Publish.d_child = reindex tag;
                d_fn = fn;
                d_col = col;
                d_tag = out_tag;
              }
        | Parent_fields | Nested_children _ -> None)
      q.returns
  in
  (* group predicates refer to children of the *original* view (the
     predicate child need not be returned); the publisher evaluates them
     against the original child query, so translate indexes carefully:
     for simplicity we require predicate children to also be returned or
     be the only child. *)
  let pred =
    Option.map
      (function
        | Some_child (tag, col, op, value) ->
            Publish.Child_exists
              ( (try reindex tag with _ -> child_index v tag),
                col, op, value )
        | Child_agg_cmp (fn, tag, col, op, value) ->
            Publish.Agg_cmp
              ( (try reindex tag with _ -> child_index v tag),
                fn, col, op, value ))
      q.where
  in
  { Publish.view = view'; derived; pred }

(* ---------- display ---------- *)

let op_str = function
  | Expr.Gt -> ">"
  | Expr.Gte -> ">="
  | Expr.Lt -> "<"
  | Expr.Lte -> "<="
  | Expr.Eq -> "="
  | Expr.Neq -> "!="
  | _ -> "?"

let to_xquery (q : t) : string =
  let v = q.view in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "For $s in /doc(tpch.xml)/%s/%s\n" v.Xml_view.root_tag
       v.Xml_view.parent.Xml_view.p_tag);
  (match q.where with
  | None -> ()
  | Some (Some_child (tag, col, op, value)) ->
      Buffer.add_string buf
        (Printf.sprintf "Where $s/%s[%s %s %g]\n" tag col (op_str op) value)
  | Some (Child_agg_cmp (fn, tag, col, op, value)) ->
      Buffer.add_string buf
        (Printf.sprintf "Where %s($s/%s/%s) %s %g\n"
           (Expr.agg_fn_to_string fn) tag col (op_str op) value));
  Buffer.add_string buf "Return <ret>\n";
  List.iter
    (function
      | Parent_fields ->
          List.iter
            (fun (_, tag) ->
              Buffer.add_string buf (Printf.sprintf "  $s/%s\n" tag))
            v.Xml_view.parent.Xml_view.p_fields
      | Nested_children tag ->
          Buffer.add_string buf
            (Printf.sprintf
               "  <%ss> For $c in $s/%s Return <%s> ... </%s> </%ss>\n" tag
               tag tag tag tag)
      | Child_aggregate (fn, tag, col, out_tag) ->
          Buffer.add_string buf
            (Printf.sprintf "  <%s>%s($s/%s/%s)</%s>\n" out_tag
               (Expr.agg_fn_to_string fn) tag col out_tag))
    q.returns;
  Buffer.add_string buf "</ret>";
  Buffer.contents buf

(* ---------- the paper's example queries over Figure 1 ---------- *)

(** Q1: names and prices of all parts plus the average retail price. *)
let q1 =
  make Xml_view.figure1
    ~returns:
      [
        Parent_fields;
        Nested_children "part";
        Child_aggregate (Expr.Avg, "part", "p_retailprice", "avg_price");
      ]

(** Q1 extended with several aggregates over the part subtree — each one
    costs the sorted-outer-union strategy a fresh join + groupby, while
    the GApply strategy folds them all into the same grouped pass. *)
let q1_extended =
  make Xml_view.figure1
    ~returns:
      [
        Parent_fields;
        Nested_children "part";
        Child_aggregate (Expr.Avg, "part", "p_retailprice", "avg_price");
        Child_aggregate (Expr.Min, "part", "p_retailprice", "min_price");
        Child_aggregate (Expr.Max, "part", "p_retailprice", "max_price");
        Child_aggregate (Expr.Count, "part", "p_retailprice", "part_count");
      ]

(** Suppliers supplying some part above [bound] (Section 4.2). *)
let expensive_part_suppliers bound =
  make Xml_view.figure1
    ~where:(Some_child ("part", "p_retailprice", Expr.Gt, bound))
    ~returns:[ Parent_fields; Nested_children "part" ]

(** Suppliers whose average part price exceeds [bound]. *)
let high_average_suppliers bound =
  make Xml_view.figure1
    ~where:(Child_agg_cmp (Expr.Avg, "part", "p_retailprice", Expr.Gt, bound))
    ~returns:[ Parent_fields; Nested_children "part" ]

(* XPeranto-style annotated view trees (paper Figure 1).

   A view describes how relational data is published as XML: a parent
   element type whose instances come from one SQL query, with nested
   child element types whose instances come from SQL queries carrying
   the parent's binding columns (the "$s" binding of Figure 1).

   The view of Figure 1:

     {
       root_tag = "suppliers";
       parent = { tag = "supplier";
                  query = "select s_suppkey, s_name from supplier";
                  key = ["s_suppkey"];
                  fields = [("s_suppkey", "s_suppkey"); ("s_name", "s_name")] };
       children = [ { tag = "part";
                      query = "select ps_suppkey, p_name, p_retailprice
                               from partsupp, part
                               where ps_partkey = p_partkey";
                      link = ["ps_suppkey"];
                      fields = [("p_name", "p_name");
                                ("p_retailprice", "p_retailprice")] } ];
     }

   Derived elements (per-group aggregates like Q1's avg price) and a
   group predicate (the Section 4.2 object-selection queries) can be
   attached by the query layer (Flwr) on top of a view. *)

type parent_spec = {
  p_tag : string;
  p_query : string;              (* first columns must include [p_key] *)
  p_key : string list;           (* identifying columns *)
  p_fields : (string * string) list;  (* (column, element tag) *)
}

type child_spec = {
  c_tag : string;
  c_query : string;              (* must output the [c_link] columns *)
  c_link : string list;          (* columns equal to the parent key,
                                    positionally paired with [p_key] *)
  c_fields : (string * string) list;
}

type t = {
  root_tag : string;
  parent : parent_spec;
  children : child_spec list;
}

let validate (v : t) =
  if v.parent.p_key = [] then
    Errors.plan_errorf "view %s: parent must have key columns" v.root_tag;
  List.iter
    (fun c ->
      if List.length c.c_link <> List.length v.parent.p_key then
        Errors.plan_errorf
          "view %s: child %s link arity does not match the parent key"
          v.root_tag c.c_tag)
    v.children;
  v

(** The view of paper Figure 1 over the TPC-H tables. *)
let figure1 =
  validate
    {
      root_tag = "suppliers";
      parent =
        {
          p_tag = "supplier";
          p_query = "select s_suppkey, s_name from supplier";
          p_key = [ "s_suppkey" ];
          p_fields = [ ("s_suppkey", "s_suppkey"); ("s_name", "s_name") ];
        };
      children =
        [
          {
            c_tag = "part";
            c_query =
              "select ps_suppkey, p_name, p_retailprice from partsupp, \
               part where ps_partkey = p_partkey";
            c_link = [ "ps_suppkey" ];
            c_fields =
              [ ("p_name", "p_name"); ("p_retailprice", "p_retailprice") ];
          };
        ];
    }

(** The constant-space tagger (the middleware of paper Section 2).

    Consumes a tuple stream clustered by the parent key (the sorted
    outer union guarantees it with ORDER BY; the GApply plan with its
    final order-by) and emits XML keeping only the current parent
    element open — memory is bounded by one group, never the whole
    document.

    @raise Errors.Exec_error if the stream is not clustered. *)

val tag : Publish.encoding -> Cursor.t -> Xml.t
(** Build the document tree. *)

val tag_to_buffer : Publish.encoding -> Cursor.t -> Buffer.t -> unit
(** Stream markup text; memory bounded by a single row. *)

type strategy =
  | Sorted_outer_union  (** the classical Section 2 pipeline *)
  | Gapply_pass         (** one GApply pass per child element type *)

val publish : ?strategy:strategy -> Catalog.t -> Publish.spec -> Xml.t
(** Plan, execute and tag a publishing spec end-to-end.
    Default strategy: [Gapply_pass]. *)

(** Plans and tagging for arbitrary-depth views ({!Deep_view}).

    Rows are encoded in a generalised sorted outer union: own-key slots
    per node (assigned in preorder), a node-id column, and per-branch
    payload slots; sorting by all key slots (NULLs first) then node id
    clusters every element immediately after its parent. *)

type branch = {
  b_id : int;
  b_tag : string option;          (** [None] = derived values *)
  b_chain_tags : string list;     (** element tags, root level first *)
  b_chain_slots : int list list;  (** own-key slots per chain level *)
  b_fields : (string * int) list;
}

type encoding = {
  e_root_tag : string;
  e_node_col : int;
  e_arity : int;
  e_branches : branch list;
  e_key_slots : int list;
}

val build_encoding : Deep_view.t -> encoding

val outer_union_plan : Catalog.t -> Deep_view.t -> Plan.t * encoding
(** One UNION ALL branch per element type and per derived aggregate;
    each aggregate re-evaluates and re-groups its node's query. *)

val gapply_plan : Catalog.t -> Deep_view.t -> Plan.t * encoding
(** Nodes with derived aggregates produce their element rows and all
    their aggregates from a single GApply pass grouped on the parent
    path. *)

val tag : encoding -> Cursor.t -> Xml.t
(** Hierarchical constant-space tagger; memory is bounded by one open
    root-to-leaf chain of groups.
    @raise Errors.Exec_error when the stream is not clustered. *)

type strategy = Sorted_outer_union | Gapply_pass

val publish : ?strategy:strategy -> Catalog.t -> Deep_view.t -> Xml.t

(** A typed FLWR (For-Where-Return) subset over XML views — the XQuery
    queries the paper poses over the Figure 1 view: Q1-style element
    reconstruction with nested children and aggregates, and the Section
    4.2 object-selection queries (existential and aggregate
    predicates). *)

type return_item =
  | Parent_fields
      (** the parent element's own fields ($s/s_suppkey, ...) *)
  | Nested_children of string
      (** a nested For over the child element with the given tag *)
  | Child_aggregate of Expr.agg_fn * string * string * string
      (** fn, child tag, child column, output element tag *)

type predicate =
  | Some_child of string * string * Expr.binop * float
      (** $s/child[column op const] *)
  | Child_agg_cmp of Expr.agg_fn * string * string * Expr.binop * float
      (** fn($s/child/column) op const *)

type t = {
  view : Xml_view.t;
  where : predicate option;
  returns : return_item list;
}

val make : ?where:predicate -> returns:return_item list -> Xml_view.t -> t

val compile : t -> Publish.spec
(** Lower to a publishing spec runnable by either strategy.
    @raise Errors.Name_error on unknown child tags. *)

val to_xquery : t -> string
(** Render in XQuery-like concrete syntax (for display). *)

(** {1 The paper's example queries over Figure 1} *)

val q1 : t
(** Names and prices of all parts plus the average retail price. *)

val q1_extended : t
(** Q1 with four aggregates — each one costs the sorted-outer-union
    strategy a fresh join + groupby, while GApply folds them into the
    same grouped pass. *)

val expensive_part_suppliers : float -> t
(** Suppliers supplying some part above the bound (Section 4.2). *)

val high_average_suppliers : float -> t
(** Suppliers whose average part price exceeds the bound. *)

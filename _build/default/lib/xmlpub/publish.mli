(** Publishing plans: turn a view (plus optional derived aggregates and
    a group predicate) into executable relational plans under the two
    strategies the paper compares.

    Both plans produce rows under the same {!encoding} (parent-key
    columns, a node-id column, null-padded per-branch payload slots), so
    the same tagger consumes either stream and the tests can check the
    published documents are identical. *)

type derived_agg = {
  d_child : int;          (** which child's rows it aggregates *)
  d_fn : Expr.agg_fn;
  d_col : string;         (** aggregated column of the child query *)
  d_tag : string;         (** element tag of the derived value *)
}

type group_pred =
  | Agg_cmp of int * Expr.agg_fn * string * Expr.binop * float
      (** keep parents whose child aggregate satisfies the comparison *)
  | Child_exists of int * string * Expr.binop * float
      (** keep parents having some child row with column op constant *)

type spec = {
  view : Xml_view.t;
  derived : derived_agg list;
  pred : group_pred option;
}

val of_view : Xml_view.t -> spec

(** {1 Row encoding} *)

type branch_desc = {
  b_id : int;
  b_tag : string option;  (** [None] for derived-value branches *)
  b_fields : (string * int) list;  (** (element tag, output column) *)
}

type encoding = {
  e_key_count : int;
  e_node_col : int;
  e_root_tag : string;
  e_parent : branch_desc;
  e_branches : branch_desc list;
  e_arity : int;
}

val build_encoding : spec -> encoding

(** {1 The two strategies} *)

val outer_union_plan : Catalog.t -> spec -> Plan.t * encoding
(** The sorted outer union of paper Section 2: one UNION ALL branch per
    element type, ordered by the parent key; derived aggregates re-join
    and re-group the child query (the redundancy the paper criticises). *)

val gapply_plan : Catalog.t -> spec -> Plan.t * encoding
(** Child rows and every derived aggregate come from a single GApply
    pass per child query. *)

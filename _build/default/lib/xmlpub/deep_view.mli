(** Arbitrary-depth XML views.

    A deep view is a tree of element nodes; each node's SQL query must
    output its full hierarchical key path (ancestor key columns first,
    its own last) — what the generalised sorted-outer-union encoding
    requires.  Derived aggregates over a node's rows (grouped by the
    parent path) attach to the parent element. *)

type aggregate_spec = {
  a_fn : Expr.agg_fn;
  a_col : string;   (** aggregated column of this node's query *)
  a_tag : string;   (** output element tag, attached to the parent *)
}

type node = {
  n_tag : string;
  n_query : string;
  n_path : string list;
  n_own_keys : int;   (** trailing columns of [n_path] owned by this node *)
  n_fields : (string * string) list;  (** (column, element tag) *)
  n_aggregates : aggregate_spec list;
  n_children : node list;
}

type t = { root_tag : string; top : node }

val validate : t -> t
(** @raise Errors.Plan_error on key-path arity mismatches. *)

val customer_orders : t
(** Three levels over the TPC-H order side: customers, their orders,
    each order's lineitems — with an order count per customer and
    revenue / line-count totals per order. *)

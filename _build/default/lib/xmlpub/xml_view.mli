(** XPeranto-style annotated view trees (paper Figure 1): a parent
    element type whose instances come from one SQL query, with nested
    child element types whose queries carry the parent's binding
    columns. *)

type parent_spec = {
  p_tag : string;
  p_query : string;              (** SQL producing parent rows *)
  p_key : string list;           (** identifying columns *)
  p_fields : (string * string) list;  (** (column, element tag) *)
}

type child_spec = {
  c_tag : string;
  c_query : string;              (** SQL producing child rows *)
  c_link : string list;          (** columns equal to the parent key,
                                     positionally paired with [p_key] *)
  c_fields : (string * string) list;
}

type t = {
  root_tag : string;
  parent : parent_spec;
  children : child_spec list;
}

val validate : t -> t
(** @raise Errors.Plan_error on empty keys / link arity mismatches. *)

val figure1 : t
(** The view of paper Figure 1 over the TPC-H tables: suppliers with
    nested parts. *)

(* Publishing plans: turn a view (plus optional derived aggregates and a
   group predicate) into executable relational plans under the two
   strategies the paper compares:

   - [outer_union_plan]: the "sorted outer union" of Section 2 — one
     UNION ALL branch per element type, null-padded to a common schema,
     ordered by the parent key so a constant-space tagger can consume the
     stream.  Derived aggregates re-join/re-group the child query
     (the redundancy the paper criticises).

   - [gapply_plan]: the child branches and every derived aggregate are
     produced by a single GApply pass over the child query; the stream is
     then ordered the same way, and the same tagger applies.

   Both plans produce rows under the same [encoding], so the tagger (and
   the tests) can check they publish identical documents. *)

type derived_agg = {
  d_child : int;          (* which child's rows it aggregates *)
  d_fn : Expr.agg_fn;
  d_col : string;         (* aggregated column of the child query *)
  d_tag : string;         (* element tag of the derived value *)
}

type group_pred =
  | Agg_cmp of int * Expr.agg_fn * string * Expr.binop * float
      (* child index, aggregate over its column, comparison, constant *)
  | Child_exists of int * string * Expr.binop * float
      (* keep parents having some child row with column op constant *)

type spec = {
  view : Xml_view.t;
  derived : derived_agg list;
  pred : group_pred option;
}

let of_view view = { view; derived = []; pred = None }

(* ---------- the common row encoding ---------- *)

type branch_desc = {
  b_id : int;
  b_tag : string option;  (* [None] for derived-value branches *)
  b_fields : (string * int) list;  (* (element tag, output column index) *)
}

type encoding = {
  e_key_count : int;
  e_node_col : int;
  e_root_tag : string;
  e_parent : branch_desc;        (* node id 0 *)
  e_branches : branch_desc list; (* children then derived, ids 1.. *)
  e_arity : int;
}

let build_encoding (spec : spec) : encoding =
  let v = spec.view in
  let k = List.length v.Xml_view.parent.Xml_view.p_key in
  let node_col = k in
  let next = ref (k + 1) in
  let alloc fields =
    List.map
      (fun (_, tag) ->
        let i = !next in
        incr next;
        (tag, i))
      fields
  in
  let parent =
    {
      b_id = 0;
      b_tag = Some v.Xml_view.parent.Xml_view.p_tag;
      b_fields = alloc v.Xml_view.parent.Xml_view.p_fields;
    }
  in
  let children =
    List.mapi
      (fun i (c : Xml_view.child_spec) ->
        { b_id = i + 1; b_tag = Some c.Xml_view.c_tag;
          b_fields = alloc c.Xml_view.c_fields })
      v.Xml_view.children
  in
  let nchildren = List.length children in
  let derived =
    List.mapi
      (fun j (d : derived_agg) ->
        {
          b_id = nchildren + 1 + j;
          b_tag = None;
          b_fields = alloc [ (d.d_col, d.d_tag) ];
        })
      spec.derived
  in
  {
    e_key_count = k;
    e_node_col = node_col;
    e_root_tag = v.Xml_view.root_tag;
    e_parent = parent;
    e_branches = children @ derived;
    e_arity = !next;
  }

(* ---------- plan-building helpers ---------- *)

let bind catalog src = Sql_binder.bind_query catalog (Sql_parser.parse_query_string src)

let key_names k = List.init k (fun i -> Printf.sprintf "xk%d" i)

(* A null-padded branch projection: key values, the node id, and this
   branch's payload in its allotted slots. *)
let branch_projection ~(enc : encoding) ~key_exprs ~(branch : branch_desc)
    ~(payload : Expr.t list) plan =
  let items = Array.make enc.e_arity (Expr.null, "pad") in
  List.iteri
    (fun i e -> items.(i) <- (e, List.nth (key_names enc.e_key_count) i))
    key_exprs;
  items.(enc.e_node_col) <- (Expr.int branch.b_id, "xnode");
  List.iteri
    (fun fi (_, col_idx) ->
      items.(col_idx) <- (List.nth payload fi, Printf.sprintf "xp%d" col_idx))
    branch.b_fields;
  Array.iteri
    (fun i (e, name) ->
      if String.equal name "pad" then
        items.(i) <- (e, Printf.sprintf "xp%d" i))
    items;
  Plan.project (Array.to_list items) plan

let field_exprs fields = List.map (fun (col, _) -> Expr.column col) fields

let cmp_expr col op v = Expr.Binary (op, Expr.column col, Expr.float v)

(* Qualifying-key plan for a group predicate, producing columns named
   qk0..qk{k-1}. *)
let qualifying_keys catalog (spec : spec) : Plan.t option =
  match spec.pred with
  | None -> None
  | Some pred ->
      let v = spec.view in
      let child_of i = List.nth v.Xml_view.children i in
      let plan =
        match pred with
        | Child_exists (i, col, op, value) ->
            let c = child_of i in
            Plan.distinct
              (Plan.project
                 (List.mapi
                    (fun j link -> (Expr.column link, Printf.sprintf "qk%d" j))
                    c.Xml_view.c_link)
                 (Plan.select (cmp_expr col op value)
                    (bind catalog c.Xml_view.c_query)))
        | Agg_cmp (i, fn, col, op, value) ->
            let c = child_of i in
            let keys =
              List.map (fun link -> Expr.col link) c.Xml_view.c_link
            in
            let agg = Expr.agg fn (Some (Expr.column col)) in
            let grouped =
              Plan.group_by keys [ (agg, "qagg") ]
                (bind catalog c.Xml_view.c_query)
            in
            Plan.project
              (List.mapi
                 (fun j link -> (Expr.column link, Printf.sprintf "qk%d" j))
                 c.Xml_view.c_link)
              (Plan.select
                 (Expr.Binary (op, Expr.column "qagg", Expr.float value))
                 grouped)
      in
      Some plan

(* Semi-join [plan] (whose key columns are [on_cols]) with the
   qualifying keys. *)
let semijoin ~keys_plan ~on_cols plan =
  let pred =
    Expr.conjoin
      (List.mapi
         (fun j col ->
           Expr.( ==^ )
             (Expr.column (Printf.sprintf "qk%d" j))
             (Expr.column col))
         on_cols)
  in
  let joined = Plan.join pred keys_plan plan in
  (* drop the qk columns again *)
  let schema = Props.schema_of plan in
  Plan.project
    (List.map
       (fun (c : Schema.column) ->
         (Expr.Col (Expr.col ?qual:c.Schema.source c.Schema.cname),
          c.Schema.cname))
       (Schema.to_list schema))
    joined

let maybe_semijoin ~keys_plan ~on_cols plan =
  match keys_plan with
  | None -> plan
  | Some keys_plan -> semijoin ~keys_plan ~on_cols plan

let order_and_union ~(enc : encoding) branches =
  let keys =
    List.init enc.e_key_count (fun i ->
        (Expr.column (Printf.sprintf "xk%d" i), Plan.Asc))
  in
  Plan.order_by
    (keys @ [ (Expr.column "xnode", Plan.Asc) ])
    (Plan.union_all branches)

(* ---------- strategy 1: sorted outer union ---------- *)

let outer_union_plan catalog (spec : spec) : Plan.t * encoding =
  let enc = build_encoding spec in
  let v = spec.view in
  let keys_plan = qualifying_keys catalog spec in
  let parent_plan =
    maybe_semijoin ~keys_plan ~on_cols:v.Xml_view.parent.Xml_view.p_key
      (bind catalog v.Xml_view.parent.Xml_view.p_query)
  in
  let parent_branch =
    branch_projection ~enc
      ~key_exprs:
        (List.map Expr.column v.Xml_view.parent.Xml_view.p_key)
      ~branch:enc.e_parent
      ~payload:(field_exprs v.Xml_view.parent.Xml_view.p_fields)
      parent_plan
  in
  let child_branches =
    List.mapi
      (fun i (c : Xml_view.child_spec) ->
        let plan =
          maybe_semijoin ~keys_plan ~on_cols:c.Xml_view.c_link
            (bind catalog c.Xml_view.c_query)
        in
        branch_projection ~enc
          ~key_exprs:(List.map Expr.column c.Xml_view.c_link)
          ~branch:(List.nth enc.e_branches i)
          ~payload:(field_exprs c.Xml_view.c_fields)
          plan)
      v.Xml_view.children
  in
  let nchildren = List.length v.Xml_view.children in
  (* derived aggregates: the outer-union strategy re-evaluates the child
     query and groups it — the redundant work of Section 2 *)
  let derived_branches =
    List.mapi
      (fun j (d : derived_agg) ->
        let c = List.nth v.Xml_view.children d.d_child in
        let plan =
          maybe_semijoin ~keys_plan ~on_cols:c.Xml_view.c_link
            (bind catalog c.Xml_view.c_query)
        in
        let keys = List.map (fun l -> Expr.col l) c.Xml_view.c_link in
        let grouped =
          Plan.group_by keys
            [ (Expr.agg d.d_fn (Some (Expr.column d.d_col)), "dagg") ]
            plan
        in
        branch_projection ~enc
          ~key_exprs:(List.map Expr.column c.Xml_view.c_link)
          ~branch:(List.nth enc.e_branches (nchildren + j))
          ~payload:[ Expr.column "dagg" ]
          grouped)
      spec.derived
  in
  ( order_and_union ~enc
      ((parent_branch :: child_branches) @ derived_branches),
    enc )

(* ---------- strategy 2: one GApply pass per child ---------- *)

let gapply_plan catalog (spec : spec) : Plan.t * encoding =
  let enc = build_encoding spec in
  let v = spec.view in
  let keys_plan = qualifying_keys catalog spec in
  let parent_plan =
    maybe_semijoin ~keys_plan ~on_cols:v.Xml_view.parent.Xml_view.p_key
      (bind catalog v.Xml_view.parent.Xml_view.p_query)
  in
  let parent_branch =
    branch_projection ~enc
      ~key_exprs:
        (List.map Expr.column v.Xml_view.parent.Xml_view.p_key)
      ~branch:enc.e_parent
      ~payload:(field_exprs v.Xml_view.parent.Xml_view.p_fields)
      parent_plan
  in
  let nchildren = List.length v.Xml_view.children in
  let gapply_branches =
    List.mapi
      (fun i (c : Xml_view.child_spec) ->
        let outer =
          maybe_semijoin ~keys_plan ~on_cols:c.Xml_view.c_link
            (bind catalog c.Xml_view.c_query)
        in
        let oschema = Props.schema_of outer in
        let var = Printf.sprintf "xg%d" i in
        let g () = Plan.group_scan ~var oschema in
        (* payload slots in the PGQ output: everything except the key
           columns, which GApply prepends *)
        let pgq_arity = enc.e_arity - enc.e_key_count in
        let pgq_items branch payload =
          let items =
            Array.init pgq_arity (fun j ->
                (Expr.null, Printf.sprintf "xp%d" (j + enc.e_key_count)))
          in
          items.(enc.e_node_col - enc.e_key_count) <-
            (Expr.int branch.b_id, "xnode");
          List.iteri
            (fun fi (_, col_idx) ->
              items.(col_idx - enc.e_key_count) <-
                (List.nth payload fi, Printf.sprintf "xp%d" col_idx))
            branch.b_fields;
          Array.to_list items
        in
        let rows_branch =
          Plan.project
            (pgq_items (List.nth enc.e_branches i)
               (field_exprs c.Xml_view.c_fields))
            (g ())
        in
        let derived_branches =
          List.concat
            (List.mapi
               (fun j (d : derived_agg) ->
                 if d.d_child <> i then []
                 else
                   [
                     Plan.project
                       (pgq_items
                          (List.nth enc.e_branches (nchildren + j))
                          [ Expr.column "dagg" ])
                       (Plan.aggregate
                          [ (Expr.agg d.d_fn (Some (Expr.column d.d_col)),
                             "dagg") ]
                          (g ()));
                   ])
               spec.derived)
        in
        let pgq = Plan.union_all (rows_branch :: derived_branches) in
        let ga =
          Plan.g_apply
            ~gcols:(List.map (fun l -> Expr.col l) c.Xml_view.c_link)
            ~var ~outer ~pgq
        in
        (* rename the key prefix to the common xk names *)
        let out = Props.schema_of ga in
        Plan.project
          (List.mapi
             (fun idx (col : Schema.column) ->
               let name =
                 if idx < enc.e_key_count then
                   Printf.sprintf "xk%d" idx
                 else (Schema.get out idx).Schema.cname
               in
               (Expr.Col (Expr.col ?qual:col.Schema.source col.Schema.cname),
                name))
             (Schema.to_list out))
          ga)
      v.Xml_view.children
  in
  (order_and_union ~enc (parent_branch :: gapply_branches), enc)

lib/xmlpub/publish.mli: Catalog Expr Plan Xml_view

lib/xmlpub/publish.ml: Array Expr List Plan Printf Props Schema Sql_binder Sql_parser String Xml_view

lib/xmlpub/deep_publish.mli: Catalog Cursor Deep_view Plan Xml

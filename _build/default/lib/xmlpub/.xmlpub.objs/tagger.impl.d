lib/xmlpub/tagger.ml: Buffer Catalog Compile Cursor Env Errors List Printf Publish Tuple Value Xml

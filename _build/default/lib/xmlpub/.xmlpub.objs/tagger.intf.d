lib/xmlpub/tagger.mli: Buffer Catalog Cursor Publish Xml

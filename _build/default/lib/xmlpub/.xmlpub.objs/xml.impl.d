lib/xmlpub/xml.ml: Buffer Format List Printf String

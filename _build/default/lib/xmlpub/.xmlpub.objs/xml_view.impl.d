lib/xmlpub/xml_view.ml: Errors List

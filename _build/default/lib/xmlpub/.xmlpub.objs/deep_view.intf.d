lib/xmlpub/deep_view.mli: Expr

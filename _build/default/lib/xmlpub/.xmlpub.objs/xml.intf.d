lib/xmlpub/xml.mli: Format

lib/xmlpub/xml_view.mli:

lib/xmlpub/flwr.ml: Buffer Errors Expr List Option Printf Publish String Xml_view

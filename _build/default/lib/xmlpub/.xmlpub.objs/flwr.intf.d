lib/xmlpub/flwr.mli: Expr Publish Xml_view

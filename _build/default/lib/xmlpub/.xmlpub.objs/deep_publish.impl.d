lib/xmlpub/deep_publish.ml: Array Catalog Compile Cursor Deep_view Env Errors Expr Hashtbl List Plan Printf Props Schema Sql_binder Sql_parser String Tuple Value Xml

lib/xmlpub/deep_view.ml: Errors Expr List

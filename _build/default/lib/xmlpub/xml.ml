(* A minimal XML document model with a serializer and an order-insensitive
   comparison.

   The paper assumes an *unordered* model of XML (Section 2), so two
   documents are considered equal when they agree up to reordering of
   sibling elements; [canonicalize] sorts siblings recursively to give a
   normal form used by the tests and the pipeline-equivalence checks. *)

type t =
  | Element of string * (string * string) list * t list
      (** tag, attributes, children *)
  | Text of string

let element ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec serialize_into buf = function
  | Text s -> Buffer.add_string buf (escape s)
  | Element (tag, attrs, children) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (serialize_into buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end

let to_string doc =
  let buf = Buffer.create 256 in
  serialize_into buf doc;
  Buffer.contents buf

let rec pp_indented ppf ~indent = function
  | Text s -> Format.fprintf ppf "%s%s@\n" (String.make indent ' ') (escape s)
  | Element (tag, attrs, children) ->
      let attrs_str =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs)
      in
      if children = [] then
        Format.fprintf ppf "%s<%s%s/>@\n" (String.make indent ' ') tag
          attrs_str
      else begin
        Format.fprintf ppf "%s<%s%s>@\n" (String.make indent ' ') tag
          attrs_str;
        List.iter (pp_indented ppf ~indent:(indent + 2)) children;
        Format.fprintf ppf "%s</%s>@\n" (String.make indent ' ') tag
      end

let pp ppf doc = pp_indented ppf ~indent:0 doc

(** Sort sibling elements recursively (by their serialized form) to get
    a normal form under the unordered XML model. *)
let rec canonicalize = function
  | Text s -> Text s
  | Element (tag, attrs, children) ->
      let children = List.map canonicalize children in
      let children =
        List.sort (fun a b -> String.compare (to_string a) (to_string b))
          children
      in
      Element (tag, List.sort compare attrs, children)

let equal_unordered a b =
  String.equal (to_string (canonicalize a)) (to_string (canonicalize b))

(* Plans and tagging for arbitrary-depth views (Deep_view).

   Row encoding (generalised sorted outer union): every node gets slots
   for its *own* key columns (assigned in preorder), one node-id column,
   and payload slots for its fields and derived aggregates.  A row fills
   the own-key slots of its whole ancestor chain and NULL-pads the rest;
   sorting by all key slots (NULLs first) then node id clusters every
   element immediately after its parent, which is what the hierarchical
   tagger needs.

   Strategies:
   - [outer_union_plan]: one UNION ALL branch per element type and per
     derived aggregate (each aggregate re-evaluates and re-groups its
     node's query — the Section 2 redundancy);
   - [gapply_plan]: nodes with derived aggregates produce their element
     rows and all their aggregates from a single GApply pass grouped on
     the parent path. *)

type branch = {
  b_id : int;
  b_tag : string option;          (* None = derived values *)
  b_chain_tags : string list;     (* element tags, root level first *)
  b_chain_slots : int list list;  (* own-key slots per chain level *)
  b_fields : (string * int) list; (* (element tag, output column) *)
}

type encoding = {
  e_root_tag : string;
  e_node_col : int;
  e_arity : int;
  e_branches : branch list;       (* indexed by b_id *)
  e_key_slots : int list;         (* all key slots, preorder *)
}

(* ---------- encoding construction ---------- *)

let build_encoding (v : Deep_view.t) : encoding =
  (* first pass: assign own-key slots in preorder *)
  let next = ref 0 in
  let slot_table : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let rec assign_keys path_id (n : Deep_view.node) =
    let own = List.init n.Deep_view.n_own_keys (fun i -> !next + i) in
    next := !next + n.Deep_view.n_own_keys;
    Hashtbl.replace slot_table (path_id ^ "/" ^ n.Deep_view.n_tag) own;
    List.iter (assign_keys (path_id ^ "/" ^ n.Deep_view.n_tag)) n.Deep_view.n_children
  in
  assign_keys "" v.Deep_view.top;
  let key_count = !next in
  let node_col = key_count in
  let payload = ref (key_count + 1) in
  let alloc fields =
    List.map
      (fun (_, tag) ->
        let i = !payload in
        incr payload;
        (tag, i))
      fields
  in
  let branches = ref [] in
  let id = ref 0 in
  let rec build path_id chain_tags chain_slots (n : Deep_view.node) =
    let own =
      Hashtbl.find slot_table (path_id ^ "/" ^ n.Deep_view.n_tag)
    in
    let chain_tags = chain_tags @ [ n.Deep_view.n_tag ] in
    let chain_slots = chain_slots @ [ own ] in
    branches :=
      {
        b_id = !id;
        b_tag = Some n.Deep_view.n_tag;
        b_chain_tags = chain_tags;
        b_chain_slots = chain_slots;
        b_fields = alloc n.Deep_view.n_fields;
      }
      :: !branches;
    incr id;
    List.iter
      (fun (a : Deep_view.aggregate_spec) ->
        branches :=
          {
            b_id = !id;
            b_tag = None;
            (* derived values attach to the parent element *)
            b_chain_tags = List.filteri (fun i _ -> i < List.length chain_tags - 1) chain_tags;
            b_chain_slots =
              List.filteri (fun i _ -> i < List.length chain_slots - 1) chain_slots;
            b_fields = alloc [ (a.Deep_view.a_col, a.Deep_view.a_tag) ];
          }
          :: !branches;
        incr id)
      n.Deep_view.n_aggregates;
    List.iter
      (build (path_id ^ "/" ^ n.Deep_view.n_tag) chain_tags chain_slots)
      n.Deep_view.n_children
  in
  build "" [] [] v.Deep_view.top;
  let branches = List.rev !branches in
  let key_slots = List.init key_count (fun i -> i) in
  {
    e_root_tag = v.Deep_view.root_tag;
    e_node_col = node_col;
    e_arity = !payload;
    e_branches = branches;
    e_key_slots = key_slots;
  }

let branch_by_id enc id =
  match List.find_opt (fun b -> b.b_id = id) enc.e_branches with
  | Some b -> b
  | None -> Errors.exec_errorf "deep tagger: unknown node id %d" id

(* ---------- plan construction ---------- *)

let bind catalog src =
  Sql_binder.bind_query catalog (Sql_parser.parse_query_string src)

let slot_name i = Printf.sprintf "dp%d" i

(* A null-padded projection to the global layout. *)
let global_projection ~(enc : encoding) ~node_id
    ~(slot_values : (int * Expr.t) list) plan =
  let items =
    Array.init enc.e_arity (fun i ->
        if i = enc.e_node_col then (Expr.int node_id, "dnode")
        else
          match List.assoc_opt i slot_values with
          | Some e -> (e, slot_name i)
          | None -> (Expr.null, slot_name i))
  in
  Plan.project (Array.to_list items) plan

(* slot/value pairs for a node's full key path *)
let path_slot_values (b : branch) (path_cols : string list) =
  let slots = List.concat b.b_chain_slots in
  List.map2 (fun slot col -> (slot, Expr.column col)) slots path_cols

let order_plan ~(enc : encoding) branches =
  Plan.order_by
    (List.map
       (fun i -> (Expr.column (slot_name i), Plan.Asc))
       enc.e_key_slots
     @ [ (Expr.column "dnode", Plan.Asc) ])
    (Plan.union_all branches)

let parent_path_cols (n : Deep_view.node) =
  List.filteri
    (fun i _ -> i < List.length n.Deep_view.n_path - n.Deep_view.n_own_keys)
    n.Deep_view.n_path

(* ---------- strategy 1: sorted outer union ---------- *)

let outer_union_plan (catalog : Catalog.t) (v : Deep_view.t) :
    Plan.t * encoding =
  let enc = build_encoding v in
  let branches = ref [] in
  let id = ref 0 in
  let rec walk (n : Deep_view.node) =
    let b = branch_by_id enc !id in
    let row_branch =
      global_projection ~enc ~node_id:b.b_id
        ~slot_values:
          (path_slot_values b n.Deep_view.n_path
          @ List.map2
              (fun (col, _) (_, slot) -> (slot, Expr.column col))
              n.Deep_view.n_fields b.b_fields)
        (bind catalog n.Deep_view.n_query)
    in
    branches := row_branch :: !branches;
    incr id;
    List.iter
      (fun (a : Deep_view.aggregate_spec) ->
        let db = branch_by_id enc !id in
        let parent_cols = parent_path_cols n in
        (* the redundancy: re-bind and re-group the node query *)
        let grouped =
          Plan.group_by
            (List.map (fun c -> Expr.col c) parent_cols)
            [ (Expr.agg a.Deep_view.a_fn (Some (Expr.column a.Deep_view.a_col)),
               "dagg") ]
            (bind catalog n.Deep_view.n_query)
        in
        let slot_values =
          List.map2
            (fun slot col -> (slot, Expr.column col))
            (List.concat db.b_chain_slots)
            parent_cols
          @ [ (snd (List.hd db.b_fields), Expr.column "dagg") ]
        in
        branches :=
          global_projection ~enc ~node_id:db.b_id ~slot_values grouped
          :: !branches;
        incr id)
      n.Deep_view.n_aggregates;
    List.iter walk n.Deep_view.n_children
  in
  walk v.Deep_view.top;
  (order_plan ~enc (List.rev !branches), enc)

(* ---------- strategy 2: GApply per aggregate-bearing node ---------- *)

let gapply_plan (catalog : Catalog.t) (v : Deep_view.t) : Plan.t * encoding
    =
  let enc = build_encoding v in
  let branches = ref [] in
  let id = ref 0 in
  let rec walk (n : Deep_view.node) =
    let b = branch_by_id enc !id in
    let row_id = !id in
    incr id;
    let agg_branches =
      List.map
        (fun (a : Deep_view.aggregate_spec) ->
          let db = branch_by_id enc !id in
          incr id;
          (a, db))
        n.Deep_view.n_aggregates
    in
    (if agg_branches = [] then
       (* no per-group computation: a plain branch *)
       branches :=
         global_projection ~enc ~node_id:b.b_id
           ~slot_values:
             (path_slot_values b n.Deep_view.n_path
             @ List.map2
                 (fun (col, _) (_, slot) -> (slot, Expr.column col))
                 n.Deep_view.n_fields b.b_fields)
           (bind catalog n.Deep_view.n_query)
         :: !branches
     else begin
       (* one GApply pass: element rows + all aggregates per group *)
       let outer = bind catalog n.Deep_view.n_query in
       let oschema = Props.schema_of outer in
       let parent_cols = parent_path_cols n in
       let own_cols =
         List.filteri
           (fun i _ ->
             i >= List.length n.Deep_view.n_path - n.Deep_view.n_own_keys)
           n.Deep_view.n_path
       in
       let parent_slots = List.concat b.b_chain_slots in
       let parent_slots =
         List.filteri
           (fun i _ -> i < List.length parent_cols)
           parent_slots
       in
       let own_slots =
         List.filteri
           (fun i _ -> i >= List.length parent_cols)
           (List.concat b.b_chain_slots)
       in
       let var = Printf.sprintf "dg%d" row_id in
       let g () = Plan.group_scan ~var oschema in
       (* the PGQ produces every global column except the parent-path
          slots, which GApply prepends as the group key *)
       let non_key_slots =
         List.filter
           (fun i -> not (List.mem i parent_slots))
           (List.init enc.e_arity (fun i -> i))
       in
       let pgq_items ~node_id ~slot_values =
         List.map
           (fun i ->
             if i = enc.e_node_col then (Expr.int node_id, "dnode")
             else
               match List.assoc_opt i slot_values with
               | Some e -> (e, slot_name i)
               | None -> (Expr.null, slot_name i))
           non_key_slots
       in
       let rows_branch =
         Plan.project
           (pgq_items ~node_id:b.b_id
              ~slot_values:
                (List.map2
                   (fun slot col -> (slot, Expr.column col))
                   own_slots own_cols
                @ List.map2
                    (fun (col, _) (_, slot) -> (slot, Expr.column col))
                    n.Deep_view.n_fields b.b_fields))
           (g ())
       in
       let agg_pgq_branches =
         List.map
           (fun ((a : Deep_view.aggregate_spec), db) ->
             Plan.project
               (pgq_items ~node_id:db.b_id
                  ~slot_values:
                    [ (snd (List.hd db.b_fields), Expr.column "dagg") ])
               (Plan.aggregate
                  [ (Expr.agg a.Deep_view.a_fn
                       (Some (Expr.column a.Deep_view.a_col)), "dagg") ]
                  (g ())))
           agg_branches
       in
       let ga =
         Plan.g_apply
           ~gcols:(List.map (fun c -> Expr.col c) parent_cols)
           ~var ~outer
           ~pgq:(Plan.union_all (rows_branch :: agg_pgq_branches))
       in
       (* re-shuffle the GApply output (parent keys first, then the PGQ
          columns) into the global slot order *)
       let ga_schema = Props.schema_of ga in
       let key_names =
         List.mapi
           (fun i _ ->
             let c = Schema.get ga_schema i in
             (List.nth parent_slots i,
              Expr.Col (Expr.col ?qual:c.Schema.source c.Schema.cname)))
           parent_cols
       in
       let items =
         List.init enc.e_arity (fun i ->
             if i = enc.e_node_col then (Expr.column "dnode", "dnode")
             else
               match List.assoc_opt i key_names with
               | Some e -> (e, slot_name i)
               | None -> (Expr.column (slot_name i), slot_name i))
       in
       branches := Plan.project items ga :: !branches
     end);
    List.iter walk n.Deep_view.n_children
  in
  walk v.Deep_view.top;
  (order_plan ~enc (List.rev !branches), enc)

(* ---------- the hierarchical constant-space tagger ---------- *)

type frame = {
  f_tag : string;
  f_key : Tuple.t;
  mutable f_children : Xml.t list;  (* reversed *)
}

let chain_keys (b : branch) (row : Tuple.t) : Tuple.t list =
  List.map
    (fun slots -> Tuple.of_list (List.map (fun i -> Tuple.get row i) slots))
    b.b_chain_slots

let field_elements (b : branch) (row : Tuple.t) =
  List.filter_map
    (fun (tag, idx) ->
      match Tuple.get row idx with
      | Value.Null -> None
      | v -> Some (Xml.element tag [ Xml.text (Value.to_string v) ]))
    b.b_fields

(** Build the document tree from a clustered stream. *)
let tag (enc : encoding) (cursor : Cursor.t) : Xml.t =
  let root_children = ref [] in
  let stack : frame list ref = ref [] in
  let pop () =
    match !stack with
    | [] -> ()
    | frame :: rest ->
        let element =
          Xml.element frame.f_tag (List.rev frame.f_children)
        in
        (match rest with
        | [] -> root_children := element :: !root_children
        | parent :: _ -> parent.f_children <- element :: parent.f_children);
        stack := rest
  in
  let common_prefix tags keys =
    (* length of the longest prefix of the open stack matching the
       row's chain (stack is innermost-first) *)
    let open_frames = List.rev !stack in
    let rec go n frames tags keys =
      match (frames, tags, keys) with
      | f :: fr, t :: tr, k :: kr
        when String.equal f.f_tag t && Tuple.equal f.f_key k ->
          go (n + 1) fr tr kr
      | _ -> n
    in
    go 0 open_frames tags keys
  in
  Cursor.iter
    (fun row ->
      match Tuple.get row enc.e_node_col with
      | Value.Int id ->
          let b = branch_by_id enc id in
          let keys = chain_keys b row in
          let depth = List.length b.b_chain_slots in
          let cp = common_prefix b.b_chain_tags keys in
          while List.length !stack > cp do
            pop ()
          done;
          (match b.b_tag with
          | Some tag ->
              if cp <> depth - 1 then
                Errors.exec_errorf
                  "deep tagger: <%s> row arrived without its parent \
                   (stream not clustered?)"
                  tag;
              stack :=
                {
                  f_tag = tag;
                  f_key = List.nth keys (depth - 1);
                  f_children = List.rev (field_elements b row);
                }
                :: !stack
          | None ->
              if cp <> depth then
                Errors.exec_errorf
                  "deep tagger: derived values arrived without their \
                   parent element";
              (match !stack with
              | frame :: _ ->
                  frame.f_children <-
                    List.rev_append (field_elements b row) frame.f_children
              | [] ->
                  Errors.exec_errorf
                    "deep tagger: derived values at the root"))
      | v ->
          Errors.exec_errorf "deep tagger: non-integer node id %s"
            (Value.to_string v))
    cursor;
  while !stack <> [] do
    pop ()
  done;
  Xml.element enc.e_root_tag (List.rev !root_children)

type strategy = Sorted_outer_union | Gapply_pass

let publish ?(strategy = Gapply_pass) (catalog : Catalog.t)
    (v : Deep_view.t) : Xml.t =
  let plan, enc =
    match strategy with
    | Sorted_outer_union -> outer_union_plan catalog v
    | Gapply_pass -> gapply_plan catalog v
  in
  let compiled = Compile.plan plan in
  tag enc (compiled.Compile.run (Env.make catalog))

(* XML publishing end-to-end (the paper's motivating pipeline):

   1. load TPC-H style data;
   2. define the XML view of Figure 1 (suppliers with nested parts);
   3. run the paper's Q1 as an XQuery-style FLWR query;
   4. publish it through both strategies — the classical sorted outer
      union, and the single GApply pass — check that the documents agree,
      and compare elapsed times.

   Run with:  dune exec examples/xml_publishing.exe                    *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let () =
  let cat = Tpch_gen.catalog ~msf:0.5 () in
  Format.printf "Loaded TPC-H micro data: %d suppliers, %d parts, %d \
                 partsupp rows@."
    (Table.cardinality (Catalog.find_table cat "supplier"))
    (Table.cardinality (Catalog.find_table cat "part"))
    (Table.cardinality (Catalog.find_table cat "partsupp"));

  let flwr = Flwr.q1 in
  Format.printf "@.The XQuery-style query (paper query Q1):@.%s@."
    (Flwr.to_xquery flwr);
  let spec = Flwr.compile flwr in

  let doc_ou, t_ou =
    time (fun () ->
        Tagger.publish ~strategy:Tagger.Sorted_outer_union cat spec)
  in
  let doc_ga, t_ga =
    time (fun () -> Tagger.publish ~strategy:Tagger.Gapply_pass cat spec)
  in

  Format.printf "@.sorted outer union: %.1f ms@." (1000. *. t_ou);
  Format.printf "GApply pass:        %.1f ms@." (1000. *. t_ga);
  Format.printf "same document:      %b@."
    (Xml.equal_unordered doc_ou doc_ga);

  (* show a small excerpt: publish supplier 1 only *)
  let small_view =
    {
      Xml_view.figure1 with
      Xml_view.parent =
        {
          Xml_view.figure1.Xml_view.parent with
          Xml_view.p_query =
            "select s_suppkey, s_name from supplier where s_suppkey = 1";
        };
      children =
        List.map
          (fun (c : Xml_view.child_spec) ->
            {
              c with
              Xml_view.c_query =
                c.Xml_view.c_query ^ " and ps_suppkey = 1";
            })
          Xml_view.figure1.Xml_view.children;
    }
  in
  let doc =
    Tagger.publish cat (Flwr.compile { flwr with Flwr.view = small_view })
  in
  Format.printf "@.Excerpt (supplier 1):@.%a" Xml.pp doc;

  (* group selection over the view (Section 4.2): suppliers supplying an
     expensive part *)
  let sel = Flwr.expensive_part_suppliers 2000. in
  Format.printf "@.Group selection query:@.%s@." (Flwr.to_xquery sel);
  let doc_sel = Tagger.publish cat (Flwr.compile sel) in
  let count =
    match doc_sel with
    | Xml.Element (_, _, children) -> List.length children
    | Xml.Text _ -> 0
  in
  Format.printf "qualifying suppliers: %d@." count;

  (* a three-level view through the generalised deep publisher *)
  let deep = Deep_view.customer_orders in
  let doc_deep_ou, t_dou =
    time (fun () ->
        Deep_publish.publish ~strategy:Deep_publish.Sorted_outer_union cat
          deep)
  in
  let doc_deep_ga, t_dga =
    time (fun () ->
        Deep_publish.publish ~strategy:Deep_publish.Gapply_pass cat deep)
  in
  Format.printf
    "@.Three-level view (customers / orders / lineitems, per-level \
     aggregates):@.";
  Format.printf "sorted outer union: %.1f ms@." (1000. *. t_dou);
  Format.printf "GApply pass:        %.1f ms@." (1000. *. t_dga);
  Format.printf "same document:      %b@."
    (Xml.equal_unordered doc_deep_ou doc_deep_ga);
  let rec first_customer = function
    | Xml.Element ("customer", _, _) as c -> Some c
    | Xml.Element (_, _, children) -> List.find_map first_customer children
    | Xml.Text _ -> None
  in
  (match first_customer doc_deep_ga with
  | Some c -> Format.printf "@.Excerpt (first customer):@.%a" Xml.pp c
  | None -> ())

(* A tour of the Section 4 transformation rules: for each rule, a query
   where it applies, the plan before and after, and the estimated costs.

   Run with:  dune exec examples/optimizer_tour.exe                    *)

let show_rule cat ~rule ~description src =
  Format.printf "@.=== %s ===@.%s@." rule description;
  Format.printf "@.sql> %s@." src;
  let plan =
    match Sql_binder.bind_statement cat (Sql_parser.parse_statement src) with
    | Sql_binder.Bound_query p -> p
    | _ -> failwith "expected a query"
  in
  Format.printf "@.-- before (cost %.0f):@.%s"
    (Cost.plan_cost cat plan) (Plan.to_string plan);
  match Optimizer.force_rule rule cat plan with
  | None -> Format.printf "@.rule did not apply!@."
  | Some plan' ->
      Format.printf "@.-- after %s (cost %.0f):@.%s" rule
        (Cost.plan_cost cat plan')
        (Plan.to_string plan');
      (* sanity: same results *)
      let same =
        Relation.equal_as_multiset
          (Executor.run cat plan)
          (Executor.run cat plan')
      in
      Format.printf "@.results unchanged: %b@." same

let () =
  let cat = Tpch_gen.catalog ~msf:0.2 () in

  show_rule cat ~rule:"selection-before-gapply"
    ~description:
      "Theorem 1: the per-group query only looks at cheap parts, so its \
       covering range becomes a selection on the outer input."
    "select gapply(select p_name, p_retailprice from g where \
     p_retailprice < 950.0) from partsupp, part where ps_partkey = \
     p_partkey group by ps_suppkey : g";

  show_rule cat ~rule:"projection-before-gapply"
    ~description:
      "Only the grouping columns and the columns the per-group query \
       references need to flow into GApply."
    "select gapply(select avg(p_retailprice), count(*) from g) from \
     partsupp, part, supplier where ps_partkey = p_partkey and \
     ps_suppkey = s_suppkey group by ps_suppkey : g";

  show_rule cat ~rule:"gapply-to-groupby"
    ~description:
      "A per-group query that only aggregates is an ordinary groupby \
       (and groupby is pipelinable where GApply blocks)."
    "select gapply(select avg(p_retailprice), count(*) from g) from \
     partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g";

  show_rule cat ~rule:"group-selection-exists"
    ~description:
      "Figure 5: evaluate the existential predicate first, then rebuild \
       only the qualifying groups (wins when the predicate is \
       selective)."
    "select gapply(select * from g where exists (select * from g where \
     p_retailprice > 2050.0)) from partsupp, part where ps_partkey = \
     p_partkey group by ps_suppkey : g";

  show_rule cat ~rule:"group-selection-aggregate"
    ~description:
      "Aggregate object selection: groupby computes one accumulator per \
       group instead of materialising whole groups."
    "select gapply(select * from g where (select avg(p_retailprice) from \
     g) > 1520.0) from partsupp, part where ps_partkey = p_partkey group \
     by ps_suppkey : g";

  show_rule cat ~rule:"invariant-grouping"
    ~description:
      "Theorem 2 / Figure 7: push GApply below the foreign-key join with \
       supplier; supplier columns re-attach after the groupwise pass."
    "select gapply(select s_name, p_name, p_retailprice from g where \
     p_retailprice = (select min(p_retailprice) from g)) from partsupp, \
     part, supplier where ps_partkey = p_partkey and ps_suppkey = \
     s_suppkey group by ps_suppkey : g";

  (* the full driver, with its trace *)
  Format.printf "@.=== the full optimizer driver ===@.";
  let src =
    "select gapply(select p_name from g where p_retailprice < 920.0) \
     from partsupp, part, supplier where ps_partkey = p_partkey and \
     ps_suppkey = s_suppkey group by ps_suppkey : g"
  in
  Format.printf "@.sql> %s@." src;
  let plan =
    match Sql_binder.bind_statement cat (Sql_parser.parse_statement src) with
    | Sql_binder.Bound_query p -> p
    | _ -> failwith "expected a query"
  in
  let result = Optimizer.optimize cat plan in
  Format.printf "@.%s@." (Optimizer.trace_to_string result.Optimizer.trace);
  Format.printf "@.-- final plan:@.%s" (Plan.to_string result.Optimizer.plan)

(* Group selection in depth (paper Section 4.2).

   A query that keeps or drops whole supplier "objects" can be evaluated
   two ways:
   - construct every group and test the predicate (plain GApply);
   - extract the qualifying group ids first and rebuild only those
     groups (the Figure 5 rewrite).

   Which is faster depends on the predicate's selectivity — exactly why
   the rule is cost-based (Table 1's "average" vs "average over wins").
   This example sweeps the selectivity and shows the measured times, the
   optimizer's cost estimates, and the decision the driver takes.

   Run with:  dune exec examples/group_selection.exe                   *)

let time_runs n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n

let () =
  let cat = Tpch_gen.catalog ~msf:1.0 () in
  let query bound =
    Printf.sprintf
      "select gapply(select * from g where exists (select * from g where \
       p_retailprice > %g)) from partsupp, part where ps_partkey = \
       p_partkey group by ps_suppkey : g"
      bound
  in
  Format.printf
    "suppliers that supply some part priced above BOUND (prices run \
     roughly 900..2100)@.@.";
  Format.printf "%-8s %12s %14s %14s %9s %s@." "bound" "qualifying"
    "gapply (ms)" "rewrite (ms)" "benefit" "driver picks";
  List.iter
    (fun bound ->
      let src = query bound in
      let plan =
        match
          Sql_binder.bind_statement cat (Sql_parser.parse_statement src)
        with
        | Sql_binder.Bound_query p -> p
        | _ -> failwith "expected a query"
      in
      let rewritten =
        match Optimizer.force_rule "group-selection-exists" cat plan with
        | Some p -> p
        | None -> failwith "rule did not fire"
      in
      let qualifying =
        let r = Executor.run cat rewritten in
        (* count distinct supplier keys in the output *)
        Relation.cardinality
          (Relation.distinct (Relation.project [ 0 ] r))
      in
      let t_plain = time_runs 3 (fun () -> Executor.run cat plan) in
      let t_rewrite = time_runs 3 (fun () -> Executor.run cat rewritten) in
      let { Optimizer.plan = chosen; _ } = Optimizer.optimize cat plan in
      let picked =
        if Plan.contains_gapply chosen then "plain gapply" else "rewrite"
      in
      Format.printf "%-8g %12d %14.2f %14.2f %8.2fx %s@." bound qualifying
        (1000. *. t_plain) (1000. *. t_rewrite)
        (t_plain /. t_rewrite) picked)
    [ 2090.; 2060.; 2000.; 1800.; 1400.; 1000. ];
  Format.printf
    "@.With a highly selective predicate the rewrite avoids building \
     groups that are thrown away; when every supplier qualifies it does \
     the grouping work twice and loses.@."

examples/optimizer_tour.ml: Cost Executor Format Optimizer Plan Relation Sql_binder Sql_parser Tpch_gen

examples/xml_publishing.mli:

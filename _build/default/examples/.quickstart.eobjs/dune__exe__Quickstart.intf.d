examples/quickstart.mli:

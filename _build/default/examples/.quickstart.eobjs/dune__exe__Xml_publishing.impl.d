examples/xml_publishing.ml: Catalog Deep_publish Deep_view Flwr Format List Table Tagger Tpch_gen Unix Xml Xml_view

examples/quickstart.ml: Engine Format List Relation

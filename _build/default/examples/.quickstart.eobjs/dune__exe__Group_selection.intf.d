examples/group_selection.mli:

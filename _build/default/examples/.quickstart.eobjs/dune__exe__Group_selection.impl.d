examples/group_selection.ml: Executor Format List Optimizer Plan Printf Relation Sql_binder Sql_parser Tpch_gen Unix

#!/usr/bin/env python3
"""End-to-end smoke test for the gapply network server.

Starts the server binary on an ephemeral port, drives concurrent wire
clients against it (happy-path rows, typed error classes, protocol
abuse, admission sheds), checks the /health and /metrics listener,
then sends SIGTERM while a statement is mid-flight and asserts a clean
graceful drain: the in-flight statement surfaces a typed cancellation
(or a clean close), the process logs "draining..." and "bye.", and
exits 0.  Exits non-zero on any violation — CI runs this as a gate.
"""

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

BIN = os.environ.get(
    "GAPPLY_SERVER_BIN", "_build/default/bin/gapply_server.exe"
)

# ---------- minimal wire client ----------


def frame(tag, payload=b""):
    return tag + struct.pack("<I", len(payload)) + payload


def read_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError(f"connection closed after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def read_response(sock):
    header = read_exact(sock, 5)
    tag = header[:1]
    (n,) = struct.unpack("<I", header[1:5])
    payload = read_exact(sock, n) if n else b""
    if tag == b"R":
        (count,) = struct.unpack("<I", payload[:4])
        return ("rows", count, payload[4:])
    if tag == b"m":
        return ("message", payload.decode())
    if tag == b"E":
        return ("explanation", payload.decode())
    if tag == b"F":
        cls_len = payload[0]
        cls = payload[1 : 1 + cls_len].decode()
        return ("failed", cls, payload[1 + cls_len :].decode())
    if tag == b"O":
        depth, retry = struct.unpack("<II", payload[:8])
        return ("overloaded", depth, retry)
    if tag == b"G":
        return ("goodbye",)
    raise AssertionError(f"unknown response tag {tag!r}")


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)

    def query(self, sql):
        self.sock.sendall(frame(b"Q", sql.encode()))
        return read_response(self.sock)

    def meta(self, cmd):
        self.sock.sendall(frame(b"M", cmd.encode()))
        return read_response(self.sock)

    def quit(self):
        try:
            self.sock.sendall(frame(b"X"))
            read_response(self.sock)
        except (EOFError, OSError):
            pass
        self.sock.close()

    def close(self):
        self.sock.close()


def http_get(port, path):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        s.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        buf = b""
        while True:
            chunk = s.recv(4096)
            if not chunk:
                return buf.decode(errors="replace")
            buf += chunk


# ---------- the smoke sequence ----------

failures = []


def check(cond, what):
    if cond:
        print(f"ok: {what}")
    else:
        failures.append(what)
        print(f"FAIL: {what}")


def worker_traffic(port, rounds, results):
    try:
        c = Client(port)
        for _ in range(rounds):
            r = c.query("select count(*) as n from orders")
            if r[0] == "rows":
                results.append("rows")
            elif r[0] == "overloaded":
                results.append("shed")
            else:
                results.append(f"unexpected:{r}")
        c.quit()
    except Exception as e:  # noqa: BLE001 — any escape is a failure
        results.append(f"exception:{e}")


def main():
    proc = subprocess.Popen(
        [
            BIN,
            "--listen", "127.0.0.1:0",
            "--http-port", "0",
            "--tpch", "0.1",
            "--max-concurrent", "2",
            "--queue-depth", "4",
            "--admission-timeout-ms", "200",
            "--drain-timeout-ms", "5000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    log_lines = []
    port = http_port = None
    deadline = time.time() + 60
    while time.time() < deadline and (port is None or http_port is None):
        line = proc.stdout.readline()
        if not line:
            break
        log_lines.append(line)
        if line.startswith("listening on "):
            port = int(line.split()[-1])
        if line.startswith("metrics on "):
            http_port = int(line.split()[-1])
    check(port is not None, "server announced its port")
    check(http_port is not None, "server announced its metrics port")
    if port is None:
        proc.kill()
        sys.exit(1)

    # drain the rest of the log in the background so the server never
    # blocks on a full stdout pipe
    def pump():
        for line in proc.stdout:
            log_lines.append(line)

    pump_t = threading.Thread(target=pump, daemon=True)
    pump_t.start()

    # typed error classes on one connection
    c = Client(port)
    check(c.query("select count(*) as n from orders")[0] == "rows",
          "happy-path query returns rows")
    check(c.query("select z from missing")[1] == "name",
          "unknown table is a typed name error")
    check(c.query("selec nonsense")[1] == "parse",
          "garbage SQL is a typed parse error")
    check(c.query("set statement_row_limit = banana!")[1] == "type",
          "malformed SET is a typed type error")
    check(c.meta("\\cache")[0] == "message", "\\cache answers a message")
    check(c.meta("\\nope")[1] == "name",
          "unknown meta-command is a typed name error")
    c.quit()

    # protocol abuse: unknown tag gets a typed protocol failure, a torn
    # frame is dropped without taking the server down
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    s.sendall(frame(b"Z"))
    check(read_response(s)[1] == "protocol",
          "unknown tag is a typed protocol failure")
    s.close()
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    s.sendall(frame(b"Q", b"x" * 64)[:8])  # header promises 64, send 3
    s.close()

    # concurrent clients: every response is rows or a typed shed
    threads, results = [], []
    buckets = [[] for _ in range(6)]
    for b in buckets:
        t = threading.Thread(target=worker_traffic, args=(port, 8, b))
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=120)
    results = [r for b in buckets for r in b]
    bad = [r for r in results if r not in ("rows", "shed")]
    check(len(results) == 48 and not bad,
          f"concurrent traffic all typed (48 responses, bad={bad})")

    # observability listener
    health = http_get(http_port, "/health")
    check("200" in health and "ok" in health, "/health answers 200 ok")
    metrics = http_get(http_port, "/metrics")
    check("gapply_statements_admitted_total" in metrics
          and "gapply_connections_accepted_total" in metrics,
          "/metrics exports the admission counters")

    # SIGTERM mid-statement: the in-flight statement must surface a
    # typed cancellation or a clean close — and the process must drain
    busy_result = []

    def busy():
        try:
            bc = Client(port)
            r = bc.query(
                "select count(*) as n from lineitem l1, orders o1, orders o2"
            )
            busy_result.append(r)
            bc.close()
        except (EOFError, OSError):
            busy_result.append(("eof",))

    busy_t = threading.Thread(target=busy)
    busy_t.start()
    time.sleep(1.0)  # let the statement get admitted and run
    proc.send_signal(signal.SIGTERM)
    busy_t.join(timeout=30)
    check(not busy_t.is_alive(), "in-flight connection never hangs")
    if busy_result:
        r = busy_result[0]
        check(
            (r[0] == "failed" and r[1] == "cancelled") or r[0] == "eof",
            f"in-flight statement typed on drain (got {r})",
        )
    else:
        check(False, "in-flight statement got a response")

    try:
        status = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        status = "hung"
    pump_t.join(timeout=5)
    log = "".join(log_lines)
    check(status == 0, f"server exited 0 after SIGTERM (got {status})")
    check("draining..." in log, "drain was announced")
    check("bye." in log, "shutdown completed")

    if failures:
        print(f"\n{len(failures)} failure(s):")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nserver smoke: all checks passed")


if __name__ == "__main__":
    main()
